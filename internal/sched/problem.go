// Package sched provides the scheduling substrate shared by every heuristic
// in this reproduction: the Problem bundle (workflow + platform + cost
// matrix), per-processor timelines with both avail-based (Eq. 3/6) and
// insertion-based placement, EST/EFT computation with optional effective
// entry-task duplication (Algorithm 1 of the paper), schedule validation,
// and Gantt-chart rendering.
package sched

import (
	"fmt"
	"sync"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
)

// Problem is one task-scheduling instance: an application workflow G, a
// heterogeneous platform P, and the W computation-cost matrix. This is the
// tuple G = (V, E, W, C) of Section IV, with C derived from edge data
// volumes and platform bandwidth.
type Problem struct {
	G *dag.Graph
	P *platform.Platform
	W *platform.Costs

	// tracer receives decision events from any scheduler run against this
	// problem; nil means no tracing (Tracer() returns obs.Nop).
	tracer obs.Tracer

	// norm memoises Normalize. Every solver normalises first, and for a
	// multi-entry/multi-exit workflow that used to clone the graph and extend
	// the cost matrix on *every* solve — the single largest allocation source
	// in the benchmark suite. The cache is a pointer so WithTracer's shallow
	// copy can swap in a fresh one (the normalised problem carries the
	// tracer, so copies with different tracers must not share it). A Problem
	// built as a bare literal has norm == nil and falls back to the uncached
	// path.
	norm *normCache
}

// normCache holds the lazily computed normalised form of one Problem.
type normCache struct {
	once sync.Once
	pr   *Problem
}

// WithTracer returns a shallow copy of the problem whose schedulers emit
// decision events to t. The copy shares G, P, and W with the receiver;
// Normalize propagates the tracer.
func (pr *Problem) WithTracer(t obs.Tracer) *Problem {
	cp := *pr
	cp.tracer = obs.OrNop(t)
	cp.norm = &normCache{}
	return &cp
}

// Tracer returns the problem's tracer, obs.Nop when none was attached.
func (pr *Problem) Tracer() obs.Tracer { return obs.OrNop(pr.tracer) }

// NewProblem validates shape compatibility and workflow well-formedness and
// returns the bundled problem.
func NewProblem(g *dag.Graph, p *platform.Platform, w *platform.Costs) (*Problem, error) {
	if g == nil || p == nil || w == nil {
		return nil, fmt.Errorf("sched: nil problem component")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(g.NumTasks(), p.NumProcs()); err != nil {
		return nil, err
	}
	return &Problem{G: g, P: p, W: w, norm: &normCache{}}, nil
}

// MustProblem is NewProblem that panics on error, for fixture construction.
func MustProblem(g *dag.Graph, p *platform.Platform, w *platform.Costs) *Problem {
	pr, err := NewProblem(g, p, w)
	if err != nil {
		panic(err)
	}
	return pr
}

// Normalize returns a problem whose workflow has exactly one entry and one
// exit task, adding zero-cost pseudo tasks (and matching zero-cost matrix
// rows) when needed. If the workflow is already normalised the receiver is
// returned unchanged. The result is computed once per Problem and memoised:
// repeated solves of the same instance (the service steady state, the
// benchmark suite) share one normalised form. Safe for concurrent use.
func (pr *Problem) Normalize() *Problem {
	if pr.norm == nil {
		return pr.normalize()
	}
	pr.norm.once.Do(func() {
		np := pr.normalize()
		if np != pr {
			// Normalising the already-normalised problem is the identity, so
			// the copy can share the cache and short-circuit here.
			np.norm = pr.norm
		}
		pr.norm.pr = np
	})
	return pr.norm.pr
}

// normalize is the uncached single-entry/single-exit rewrite.
func (pr *Problem) normalize() *Problem {
	g, changed := dag.NormalizeSingleEntryExit(pr.G)
	if !changed {
		return pr
	}
	extra := g.NumTasks() - pr.G.NumTasks()
	return &Problem{G: g, P: pr.P, W: pr.W.ExtendZeroRows(extra), tracer: pr.tracer}
}

// Exec returns W(t, p), the execution time of task t on processor p.
func (pr *Problem) Exec(t dag.TaskID, p platform.Proc) float64 {
	return pr.W.At(int(t), p)
}

// Comm returns the communication time for the dependency carrying data
// units when producer and consumer run on processors a and b.
func (pr *Problem) Comm(data float64, a, b platform.Proc) float64 {
	return pr.P.CommTime(data, a, b)
}

// MeanComm returns the average communication time of a dependency over all
// distinct processor pairs — the edge weight used by mean-based upward ranks
// (HEFT, CPOP). Under uniform bandwidth this is simply the data volume.
func (pr *Problem) MeanComm(data float64) float64 {
	p := pr.P.NumProcs()
	if p < 2 || data == 0 {
		return 0
	}
	sum := 0.0
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			if a != b {
				sum += pr.Comm(data, platform.Proc(a), platform.Proc(b))
			}
		}
	}
	return sum / float64(p*(p-1))
}

// NumTasks is shorthand for the workflow task count.
func (pr *Problem) NumTasks() int { return pr.G.NumTasks() }

// NumProcs is shorthand for the platform processor count.
func (pr *Problem) NumProcs() int { return pr.P.NumProcs() }

// SeqTimeOnBestProc returns min over processors of the sum of all task
// execution times on that processor — the numerator of Speedup (Eq. 11).
func (pr *Problem) SeqTimeOnBestProc() float64 {
	best := 0.0
	for p := 0; p < pr.NumProcs(); p++ {
		sum := 0.0
		for t := 0; t < pr.NumTasks(); t++ {
			sum += pr.W.At(t, platform.Proc(p))
		}
		if p == 0 || sum < best {
			best = sum
		}
	}
	return best
}

// CPMinLowerBound returns the makespan lower bound used as the SLR
// denominator (Eq. 10): the critical path is computed with every task
// weighted by its minimum execution time (communication excluded, since a
// perfect schedule co-locates the path), and the bound is the sum of those
// minimum times along the path.
func (pr *Problem) CPMinLowerBound() (float64, error) {
	node := func(t dag.TaskID) float64 {
		m, _ := pr.W.Min(int(t))
		return m
	}
	_, total, err := pr.G.CriticalPath(node, dag.ZeroEdges)
	return total, err
}
