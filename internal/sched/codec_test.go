package sched

import (
	"bytes"
	"strings"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

func TestProblemJSONRoundTripUniform(t *testing.T) {
	pr := chainProblem(t)
	var buf bytes.Buffer
	if err := pr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "bandwidth") {
		t.Error("uniform problem should omit the bandwidth matrix")
	}
	back, err := ReadProblemJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != pr.NumTasks() || back.NumProcs() != pr.NumProcs() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.NumTasks(), back.NumProcs(), pr.NumTasks(), pr.NumProcs())
	}
	for task := 0; task < pr.NumTasks(); task++ {
		for p := 0; p < pr.NumProcs(); p++ {
			if back.W.At(task, platform.Proc(p)) != pr.W.At(task, platform.Proc(p)) {
				t.Fatalf("cost (%d,%d) changed", task, p)
			}
		}
	}
}

func TestProblemJSONRoundTripBandwidth(t *testing.T) {
	g := dag.New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 10)
	pl, err := platform.NewWithBandwidth([][]float64{{0, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	w := platform.MustCostsFromRows([][]float64{{1, 1}, {2, 2}})
	pr := MustProblem(g, pl, w)

	var buf bytes.Buffer
	if err := pr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bandwidth") {
		t.Fatal("non-uniform bandwidth not serialised")
	}
	back, err := ReadProblemJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.P.Bandwidth(0, 1); got != 2 {
		t.Fatalf("bandwidth after round trip = %g, want 2", got)
	}
	if got := back.Comm(10, 0, 1); got != 5 {
		t.Fatalf("comm time after round trip = %g, want 5", got)
	}
}

func TestReadProblemJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not-json":   "{",
		"no-graph":   `{"procs":2,"costs":[[1,1]]}`,
		"bad-costs":  `{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":2,"costs":[[1,-1]]}`,
		"shape":      `{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":3,"costs":[[1,1]]}`,
		"zero-procs": `{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":0,"costs":[[1]]}`,
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadProblemJSON(strings.NewReader(raw)); err == nil {
				t.Fatalf("accepted %s", name)
			}
		})
	}
}

func TestGanttOutput(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	_ = s.PlaceDuplicate(0, 1, 0)
	_ = s.Place(1, 1, 7)
	_ = s.Place(2, 1, 8)

	var buf bytes.Buffer
	if err := s.WriteGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"P1", "P2", "makespan = 10", "A*[0,4)", "B[7,8)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt missing %q:\n%s", want, out)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	pr := chainProblem(t)
	var buf bytes.Buffer
	if err := NewSchedule(pr).WriteGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty schedule") {
		t.Errorf("empty Gantt output = %q", buf.String())
	}
}
