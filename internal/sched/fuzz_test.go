package sched

import (
	"bytes"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

// FuzzProblemJSON hardens the problem decoder: arbitrary bytes must either
// fail cleanly or produce a problem that validates and round-trips.
func FuzzProblemJSON(f *testing.F) {
	// Seed with a real serialised problem.
	g := dag.New(3)
	a := g.AddTask("a")
	b := g.AddTask("b")
	c := g.AddTask("c")
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(b, c, 5)
	pr := MustProblem(g, platform.MustUniform(2),
		platform.MustCostsFromRows([][]float64{{2, 4}, {3, 1}, {2, 2}}))
	var seed bytes.Buffer
	if err := pr.WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":2,"costs":[[1,2]]}`))
	f.Add([]byte(`{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":0,"costs":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"graph":{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":2}]},"procs":2,"bandwidth":[[0,4],[4,0]],"costs":[[1,2],[3,4]]}`))
	f.Add([]byte(`{"graph":{"tasks":[{"name":"a"},{"name":"b"}],"edges":[]},"procs":2,"bandwidth":[[0,-4],[-4,0]],"costs":[[1,2],[3,4]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := ReadProblemJSON(bytes.NewReader(data))
		if err != nil {
			return // clean rejection is fine
		}
		if err := pr.G.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid workflow: %v", err)
		}
		var buf bytes.Buffer
		if err := pr.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadProblemJSON(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
