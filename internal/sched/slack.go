package sched

import (
	"fmt"
	"math"
	"sort"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

// SlackReport describes how much schedule-internal float each task has: the
// amount its start could slip — holding every assignment, every
// per-processor order, and every data route fixed — without growing the
// makespan. Zero-slack tasks form the schedule's critical chain(s): the
// places where any runtime overrun translates one-for-one into a longer
// execution.
type SlackReport struct {
	// Slack is indexed by task (primary copies).
	Slack []float64
	// Critical lists the tasks with (near-)zero slack, ascending by ID.
	Critical []dag.TaskID
	// TotalSlack sums all task slacks (a schedule-robustness indicator).
	TotalSlack float64
}

// slackNode identifies one task copy in the constraint graph.
type slackNode struct {
	task dag.TaskID
	proc platform.Proc
	dup  bool
}

// ComputeSlack performs the backward (latest-start) pass over the
// schedule's realised constraint graph:
//
//   - data constraints use the *serving copy* of each dependency — the copy
//     whose output actually arrives first at the consumer's processor;
//   - sequence constraints chain consecutive slots on each processor;
//   - every copy's latest finish is bounded by the makespan.
//
// The schedule must be complete.
func (s *Schedule) ComputeSlack() (*SlackReport, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("sched: cannot compute slack for an incomplete schedule (%d/%d placed)", s.NumPlaced(), s.prob.NumTasks())
	}
	mk := s.Makespan()
	g := s.prob.G

	// latestFinish per copy, initialised to the makespan.
	latest := map[slackNode]float64{}
	key := func(p Placement) slackNode { return slackNode{task: p.Task, proc: p.Proc, dup: p.Duplicate} }
	var all []Placement
	for t := 0; t < s.prob.NumTasks(); t++ {
		for _, c := range s.Copies(dag.TaskID(t)) {
			latest[key(c)] = mk
			all = append(all, c)
		}
	}
	// Process copies in reverse start order: every constraint successor
	// (data consumer or next slot on the processor) starts no earlier, so
	// it has already been tightened when we reach its predecessor.
	sort.Slice(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start > all[j].Start
		}
		return all[i].Task > all[j].Task
	})

	tighten := func(n slackNode, bound float64) {
		if bound < latest[n] {
			latest[n] = bound
		}
	}

	// Pre-compute, per dependency per consumer, the serving copy.
	servingCopy := func(u dag.TaskID, data float64, consumer Placement) Placement {
		best := Placement{Proc: -1}
		bestArr := math.Inf(1)
		for _, c := range s.Copies(u) {
			if arr := c.Finish + s.prob.Comm(data, c.Proc, consumer.Proc); arr < bestArr {
				bestArr, best = arr, c
			}
		}
		return best
	}

	// Sequence constraints: for each processor, map each slot to its
	// successor slot.
	nextOnProc := map[slackNode]slackNode{}
	hasNext := map[slackNode]bool{}
	for p := 0; p < s.prob.NumProcs(); p++ {
		slots := s.ProcSlots(platform.Proc(p))
		for i := 0; i+1 < len(slots); i++ {
			a := slackNode{task: slots[i].Task, proc: platform.Proc(p), dup: slots[i].Duplicate}
			b := slackNode{task: slots[i+1].Task, proc: platform.Proc(p), dup: slots[i+1].Duplicate}
			nextOnProc[a] = b
			hasNext[a] = true
		}
	}

	// latestStart(copy) = latest[copy] − exec; propagate backwards.
	for _, c := range all {
		n := key(c)
		// Sequence: this copy must finish before the next slot's latest start.
		if hasNext[n] {
			nx := nextOnProc[n]
			var nxExec float64
			nxExec = s.prob.Exec(nx.task, nx.proc)
			tighten(n, latest[nx]-nxExec)
		}
		// Data: for every consumer fed by this copy.
		for _, a := range g.Succs(c.Task) {
			consumer := s.primary[a.Task]
			serving := servingCopy(c.Task, a.Data, consumer)
			if serving.Proc == c.Proc && serving.Duplicate == c.Duplicate {
				cn := key(consumer)
				bound := latest[cn] - s.prob.Exec(consumer.Task, consumer.Proc) - s.prob.Comm(a.Data, c.Proc, consumer.Proc)
				tighten(n, bound)
			}
		}
	}

	rep := &SlackReport{Slack: make([]float64, s.prob.NumTasks())}
	const tol = 1e-9
	for t := 0; t < s.prob.NumTasks(); t++ {
		c := s.primary[t]
		sl := (latest[key(c)] - s.prob.Exec(c.Task, c.Proc)) - c.Start
		// Clamp floating-point dust in both directions.
		if sl < tol && sl > -tol {
			sl = 0
		}
		if sl < 0 {
			return nil, fmt.Errorf("sched: negative slack %g for task %d — constraint graph inconsistent", sl, t)
		}
		rep.Slack[t] = sl
		rep.TotalSlack += sl
		if sl <= tol {
			rep.Critical = append(rep.Critical, dag.TaskID(t))
		}
	}
	return rep, nil
}
