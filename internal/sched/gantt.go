package sched

import (
	"fmt"
	"io"
	"strings"

	"hdlts/internal/platform"
)

// WriteGantt renders the schedule as a plain-text Gantt chart, one row per
// processor, at the given character width. Duplicated copies are marked
// with a trailing '*'.
func (s *Schedule) WriteGantt(w io.Writer, width int) error {
	if width < 20 {
		width = 20
	}
	mk := s.Makespan()
	if mk == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	scale := float64(width) / mk
	for p := 0; p < s.prob.NumProcs(); p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		var legend strings.Builder
		for _, sl := range s.ProcSlots(platform.Proc(p)) {
			if sl.Dur() == 0 {
				continue
			}
			from := int(sl.Start * scale)
			to := int(sl.End * scale)
			if to <= from {
				to = from + 1
			}
			if to > width {
				to = width
			}
			ch := byte('A' + int(sl.Task)%26)
			for i := from; i < to; i++ {
				row[i] = ch
			}
			name := s.prob.G.Task(sl.Task).Name
			if name == "" {
				name = fmt.Sprintf("T%d", int(sl.Task)+1)
			}
			mark := ""
			if sl.Duplicate {
				mark = "*"
			}
			fmt.Fprintf(&legend, " %c=%s%s[%g,%g)", ch, name, mark, sl.Start, sl.End)
		}
		if _, err := fmt.Fprintf(w, "%-4s |%s|%s\n", s.prob.P.Name(platform.Proc(p)), row, legend.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "makespan = %g\n", mk)
	return err
}

// Summary returns a one-line description of the schedule.
func (s *Schedule) Summary() string {
	return fmt.Sprintf("schedule: %d/%d tasks placed, %d duplicates, makespan %g",
		s.NumPlaced(), s.prob.NumTasks(), s.NumDuplicates(), s.Makespan())
}
