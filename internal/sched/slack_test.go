package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

func TestComputeSlackIncomplete(t *testing.T) {
	pr := chainProblem(t)
	if _, err := NewSchedule(pr).ComputeSlack(); err == nil {
		t.Fatal("slack of incomplete schedule computed")
	}
}

func TestComputeSlackChain(t *testing.T) {
	// A [0,2) P1; B [7,8) P2 (comm-bound); C [8,10) P2. Makespan 10.
	// Every task is on the single chain: all slacks are zero.
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	_ = s.Place(1, 1, 7)
	_ = s.Place(2, 1, 8)
	rep, err := s.ComputeSlack()
	if err != nil {
		t.Fatal(err)
	}
	for task, sl := range rep.Slack {
		if sl != 0 {
			t.Errorf("task %d slack = %g, want 0", task, sl)
		}
	}
	if len(rep.Critical) != 3 || rep.TotalSlack != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestComputeSlackParallelBranch(t *testing.T) {
	// Fork: E -> {X, Y}; X is long (critical), Y short on another proc.
	g := newForkGraph(t)
	s := g.s
	rep, err := s.ComputeSlack()
	if err != nil {
		t.Fatal(err)
	}
	// E and X critical; Y has exactly the gap between its finish and the
	// makespan (it constrains nothing afterwards).
	if rep.Slack[0] != 0 || rep.Slack[1] != 0 {
		t.Fatalf("critical tasks have slack: %v", rep.Slack)
	}
	wantY := s.Makespan() - s.primary[2].Finish
	if math.Abs(rep.Slack[2]-wantY) > 1e-9 {
		t.Fatalf("Y slack = %g, want %g", rep.Slack[2], wantY)
	}
	if len(rep.Critical) != 2 {
		t.Fatalf("critical = %v", rep.Critical)
	}
}

// newForkGraph builds E -> {X, Y} with X long on P1 and Y short on P2.
type forkFixture struct{ s *Schedule }

func newForkGraph(t *testing.T) forkFixture {
	t.Helper()
	g := dag.New(3)
	e := g.AddTask("E")
	x := g.AddTask("X")
	y := g.AddTask("Y")
	g.MustAddEdge(e, x, 1)
	g.MustAddEdge(e, y, 1)
	w := platform.MustCostsFromRows([][]float64{{2, 2}, {10, 10}, {1, 1}})
	pr := MustProblem(g, platform.MustUniform(2), w)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0) // E [0,2) P1
	_ = s.Place(1, 0, 2) // X [2,12) P1 — critical
	_ = s.Place(2, 1, 3) // Y [3,4) P2 (comm 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return forkFixture{s: s}
}

// TestQuickSlackSoundness: slipping any single task by its reported slack
// (re-deriving finish times with the realised routes) never grows the
// makespan; slipping a critical task by any positive amount does.
func TestQuickSlackSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, pending, err := randomPartialSchedule(rng)
		if err != nil {
			return false
		}
		for _, task := range pending {
			e, err := s.BestEFT(task, Policy{Insertion: rng.Intn(2) == 0})
			if err != nil {
				return false
			}
			if err := s.Place(task, e.Proc, e.EST); err != nil {
				return false
			}
		}
		rep, err := s.ComputeSlack()
		if err != nil {
			t.Logf("slack: %v", err)
			return false
		}
		// Basic invariants: non-negative, at least one critical task, and a
		// task finishing exactly at the makespan is always critical.
		if len(rep.Critical) == 0 {
			return false
		}
		mk := s.Makespan()
		for task := 0; task < s.Problem().NumTasks(); task++ {
			if rep.Slack[task] < 0 {
				return false
			}
			if s.primary[task].Finish == mk && rep.Slack[task] != 0 {
				t.Logf("makespan task %d has slack %g", task, rep.Slack[task])
				return false
			}
			// Slack never exceeds the distance to the makespan.
			if rep.Slack[task] > mk-s.primary[task].Finish+1e-9 {
				t.Logf("task %d slack %g exceeds tail gap", task, rep.Slack[task])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
