package sched

import (
	"fmt"
	"math"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
)

// Substrate metric series names.
const (
	metricEstimates  = "hdlts_sched_estimates_total"
	metricCommits    = "hdlts_sched_commits_total"
	metricDuplicates = "hdlts_sched_duplicates_total"
)

// Substrate-level metrics: every scheduler funnels through Estimate and
// Commit, so these counters measure decision cost uniformly across
// algorithms. They live in the default obs registry.
var (
	estimateCount  = obs.Default().Counter(metricEstimates)
	commitCount    = obs.Default().Counter(metricCommits)
	duplicateCount = obs.Default().Counter(metricDuplicates)
)

// Policy selects how EST/EFT are computed and how tasks are committed onto
// timelines. The paper's heuristics differ exactly along these two axes.
type Policy struct {
	// Insertion enables the insertion-based slot search (HEFT, CPOP, PETS,
	// PEFT). When false, placement is avail-based: EST = max(ready, Avail(p))
	// per Eq. (6), which is what HDLTS uses.
	Insertion bool
	// EntryDuplication enables Algorithm 1's effective entry-task
	// duplication: while estimating EST on processor p, a child of the entry
	// task may virtually restart the entry task at time 0 on p; the duplicate
	// is materialised at commit time only when it strictly improves the
	// committed start time (HDLTS, SDBATS).
	EntryDuplication bool
}

// HDLTSPolicy is the policy used by the paper's algorithm.
var HDLTSPolicy = Policy{Insertion: false, EntryDuplication: true}

// InsertionPolicy is the plain insertion-based policy of HEFT/PETS/PEFT/CPOP.
var InsertionPolicy = Policy{Insertion: true}

// Estimate is the result of evaluating one (task, processor) pair.
type Estimate struct {
	Task  dag.TaskID
	Proc  platform.Proc
	Ready float64 // earliest time all inputs are available on Proc
	EST   float64 // earliest start time (Eq. 6 or insertion slot)
	EFT   float64 // EST + W(task, Proc) (Eq. 7)
	// UseDuplicate is set when Ready relies on a not-yet-materialised entry
	// duplicate on Proc; committing this estimate must materialise it.
	UseDuplicate bool
	// DupTask is the parentless parent the duplicate copies (valid only
	// when UseDuplicate). Normalised problems have at most one candidate
	// (the unique entry); for raw multi-entry graphs only the first
	// parentless parent is ever considered, keeping the single-duplicate
	// estimate sound.
	DupTask dag.TaskID
	// DupStart/DupFinish describe the virtual duplicate when UseDuplicate.
	DupStart, DupFinish float64
}

// ReadyTime computes Ready(t, p) (Definition 5): the earliest time every
// parent output is available on processor p, taking all scheduled copies
// (including existing duplicates) into account. With entry duplication
// enabled it additionally considers restarting the entry-task parent at
// time 0 on p when no copy exists there and the [0, W(entry, p)) interval is
// idle; only the first parentless parent is considered (normalised problems
// have at most one). It reports whether the virtual duplicate lowered the
// ready time, which task it copies, and its would-be finish time.
//
// ReadyTime returns an error if some parent of t is still unscheduled: the
// caller must submit tasks in precedence order (the ITQ guarantees this).
//
//hdlts:hotpath
func (s *Schedule) ReadyTime(t dag.TaskID, p platform.Proc, pol Policy) (ready float64, usedDup bool, dupTask dag.TaskID, dupFinish float64, err error) {
	g := s.prob.G
	readyWith, readyWithout := 0.0, 0.0
	dupTask = dag.None
	dupFinish = math.NaN()
	dupConsidered := false
	for _, a := range g.Preds(t) {
		u := a.Task
		arr := s.arrivalFromCopies(u, a.Data, p)
		if math.IsInf(arr, 1) {
			return 0, false, dag.None, 0, fmt.Errorf("sched: parent %d of task %d is not scheduled yet", u, t)
		}
		arrWith := arr
		if pol.EntryDuplication && !dupConsidered && g.InDegree(u) == 0 {
			dupConsidered = true
			if !s.HasCopyOn(u, p) {
				if w := s.prob.Exec(u, p); s.FreeAt(p, 0, w) && w < arrWith {
					arrWith = w
					dupTask = u
					dupFinish = w
				}
			}
		}
		if arrWith > readyWith {
			readyWith = arrWith
		}
		if arr > readyWithout {
			readyWithout = arr
		}
	}
	if pol.EntryDuplication && dupTask != dag.None && readyWith < readyWithout {
		return readyWith, true, dupTask, dupFinish, nil
	}
	return readyWithout, false, dag.None, 0, nil
}

// FillArrivals caches the placement-independent half of ReadyTime for a
// queued task: per-processor parent-output arrival times. Once every parent
// of t is placed, these arrivals change only when a *new copy* of a parent
// materialises (entry-task duplication) — commits of unrelated tasks leave
// them untouched — so the indexed HDLTS core fills them once per enqueue and
// answers later estimates in O(1) per processor via EstimateArrived.
//
// entry and other must each have length NumProcs. other[p] receives the
// maximum arrival over all parents except the duplication candidate (0 when
// none); when pol.EntryDuplication is set and t has a parentless parent, the
// first such parent (in predecessor order, mirroring ReadyTime) becomes the
// candidate: its ID is returned and entry[p] receives its arrival. Without a
// candidate the returned ID is dag.None and entry is untouched.
//
// Like ReadyTime it errors when a parent of t is still unscheduled.
//
//hdlts:hotpath
func (s *Schedule) FillArrivals(t dag.TaskID, pol Policy, entry, other []float64) (dag.TaskID, error) {
	g := s.prob.G
	np := s.prob.NumProcs()
	uniform := s.prob.P.Uniform()
	// Reslicing to np lets the compiler drop bounds checks in the
	// per-processor loops below.
	entry, other = entry[:np], other[:np]
	for p := range other {
		other[p] = 0
	}
	entryTask := dag.None
	// Under unit bandwidth an un-duplicated parent contributes Finish+Data
	// to every column except its own processor, which sees Finish. Rather
	// than sweeping np columns per parent, fold the parents into the two
	// largest Finish+Data values held on *distinct* processors (m1 on p1,
	// m2 elsewhere) plus a per-own-processor Finish merged directly into
	// other, then compose the columns in one O(np) pass: column p1 takes
	// m2, every other column takes m1. All of it is comparisons and copies
	// of already-computed sums, so the result is bit-identical to the
	// per-parent sweep. Parents with duplicates (or non-uniform platforms)
	// keep the generic per-column merge.
	m1, m2 := 0.0, 0.0
	var p1 platform.Proc = -1
	for _, a := range g.Preds(t) {
		u := a.Task
		// The parent's primary placement is resolved once per parent, not
		// once per (parent, processor) as arrivalFromCopies would.
		pc := s.primary[u]
		if pc.Proc == unplaced {
			return dag.None, fmt.Errorf("sched: parent %d of task %d is not scheduled yet", u, t)
		}
		if pol.EntryDuplication && entryTask == dag.None && g.InDegree(u) == 0 {
			entryTask = u
			s.arrivalsInto(pc, u, a.Data, uniform, entry)
			continue
		}
		dups := s.dups[u]
		if uniform && len(dups) == 0 {
			base := pc.Finish + a.Data
			if fin := pc.Finish; fin > other[pc.Proc] {
				other[pc.Proc] = fin
			}
			switch {
			case pc.Proc == p1:
				if base > m1 {
					m1 = base
				}
			case base > m1:
				// The displaced m1 sits on a processor other than the new
				// p1 and dominates everything seen before it, so it is
				// exactly the new exclude-p1 maximum.
				m2, m1, p1 = m1, base, pc.Proc
			case base > m2:
				m2 = base
			}
			continue
		}
		for p := 0; p < np; p++ {
			arr := pc.Finish + s.prob.Comm(a.Data, pc.Proc, platform.Proc(p))
			for _, c := range dups {
				if v := c.Finish + s.prob.Comm(a.Data, c.Proc, platform.Proc(p)); v < arr {
					arr = v
				}
			}
			if arr > other[p] {
				other[p] = arr
			}
		}
	}
	if p1 >= 0 {
		for p := range other {
			b := m1
			if platform.Proc(p) == p1 {
				b = m2
			}
			if b > other[p] {
				other[p] = b
			}
		}
	}
	return entryTask, nil
}

// arrivalsInto writes parent u's per-processor output arrival (earliest
// over all copies) into dst — the overwrite form FillArrivals uses for the
// duplication candidate's row. pc is u's already-resolved primary placement.
//
//hdlts:hotpath
func (s *Schedule) arrivalsInto(pc Placement, u dag.TaskID, data float64, uniform bool, dst []float64) {
	np := s.prob.NumProcs()
	dups := s.dups[u]
	if uniform && len(dups) == 0 {
		base := pc.Finish + data
		for p := 0; p < np; p++ {
			dst[p] = base
		}
		dst[pc.Proc] = pc.Finish
		return
	}
	for p := 0; p < np; p++ {
		arr := pc.Finish + s.prob.Comm(data, pc.Proc, platform.Proc(p))
		for _, c := range dups {
			if v := c.Finish + s.prob.Comm(data, c.Proc, platform.Proc(p)); v < arr {
				arr = v
			}
		}
		dst[p] = arr
	}
}

// EstimateArrived is Estimate for callers holding arrival caches from
// FillArrivals: entryArr/otherArr are that call's entry[p]/other[p] and
// entryTask its returned candidate. The result is bit-identical to
// Estimate(t, p, pol) as long as no new copy of a parent of t has been
// placed since the arrivals were filled (the caller re-fills after any
// duplication). Unlike Estimate it never errors — the fill already proved
// every parent placed — and it neither emits tracer events nor bumps the
// substrate estimate counter: the indexed core runs only untraced and
// batch-accounts its estimates.
//
//hdlts:hotpath
func (s *Schedule) EstimateArrived(t dag.TaskID, p platform.Proc, pol Policy, entryTask dag.TaskID, entryArr, otherArr float64) Estimate {
	dur := s.prob.Exec(t, p)
	readyWithout := otherArr
	if entryTask != dag.None && entryArr > readyWithout {
		readyWithout = entryArr
	}
	ready := readyWithout
	usedDup := false
	dupFinish := 0.0
	if pol.EntryDuplication && entryTask != dag.None && !s.HasCopyOn(entryTask, p) {
		if w := s.prob.Exec(entryTask, p); s.FreeAt(p, 0, w) && w < entryArr {
			readyWith := otherArr
			if w > readyWith {
				readyWith = w
			}
			if readyWith < readyWithout {
				ready = readyWith
				usedDup = true
				dupFinish = w
			}
		}
	}
	e := Estimate{Task: t, Proc: p, Ready: ready, EST: s.startFor(p, ready, dur, pol), DupTask: dag.None}
	if usedDup {
		// Same strict-improvement rule as Estimate: keep the duplicate only
		// when it lowers the committed start.
		if estPlain := s.startFor(p, readyWithout, dur, pol); e.EST < estPlain {
			e.UseDuplicate = true
			e.DupTask = entryTask
			e.DupStart = 0
			e.DupFinish = dupFinish
		} else {
			e.Ready = readyWithout
			e.EST = estPlain
		}
	}
	e.EFT = e.EST + dur
	return e
}

// CountEstimates adds n to the substrate estimate counter on behalf of
// callers that go through EstimateArrived, which does not bump the counter
// per call: the indexed HDLTS core batches one Add per solve instead of
// ~V·P atomic increments, keeping the counter's meaning (one unit per
// (task, processor) evaluation) identical across engines.
func CountEstimates(n int64) {
	if n > 0 {
		estimateCount.Add(n)
	}
}

// Estimate evaluates task t on processor p under the policy: it computes
// Ready, EST, and EFT, deciding whether the virtual entry duplicate is
// actually beneficial for the *committed* start (a duplicate that does not
// strictly reduce EST is discarded, implementing "duplicate the entry task
// only if it helps to reduce the overall application execution time").
//
//hdlts:hotpath
func (s *Schedule) Estimate(t dag.TaskID, p platform.Proc, pol Policy) (Estimate, error) {
	estimateCount.Inc()
	dur := s.prob.Exec(t, p)

	ready, usedDup, dupTask, dupFinish, err := s.ReadyTime(t, p, pol)
	if err != nil {
		return Estimate{}, err
	}
	e := Estimate{Task: t, Proc: p, Ready: ready, EST: s.startFor(p, ready, dur, pol), DupTask: dag.None}
	if usedDup {
		// Compare against the duplication-free alternative; keep the
		// duplicate only when it strictly improves the start time.
		readyPlain, _, _, _, err := s.ReadyTime(t, p, Policy{Insertion: pol.Insertion})
		if err != nil {
			return Estimate{}, err
		}
		if estPlain := s.startFor(p, readyPlain, dur, pol); e.EST < estPlain {
			e.UseDuplicate = true
			e.DupTask = dupTask
			e.DupStart = 0
			e.DupFinish = dupFinish
		} else {
			e.Ready = readyPlain
			e.EST = estPlain
		}
	}
	e.EFT = e.EST + dur
	if tr := s.prob.Tracer(); tr.Enabled() {
		tr.Emit(obs.Event{Type: obs.EvEstimate, Task: int(t), Proc: int(p), Start: e.EST, Finish: e.EFT, Dup: e.UseDuplicate})
	}
	return e, nil
}

// startFor computes the earliest start for a task of length dur that is
// ready on processor p at time ready: the insertion-based slot search when
// the policy asks for it, avail-based placement (Eq. 6) otherwise.
//
//hdlts:hotpath
func (s *Schedule) startFor(p platform.Proc, ready, dur float64, pol Policy) float64 {
	if pol.Insertion {
		return s.EarliestFit(p, ready, dur)
	}
	if a := s.Avail(p); a > ready {
		return a
	}
	return ready
}

// EstimateAll evaluates t on every processor, reusing a caller-provided
// buffer when it has sufficient capacity. The result is indexed by
// processor.
//
//hdlts:hotpath
func (s *Schedule) EstimateAll(t dag.TaskID, pol Policy, buf []Estimate) ([]Estimate, error) {
	n := s.prob.NumProcs()
	if cap(buf) < n {
		buf = make([]Estimate, n)
	}
	buf = buf[:n]
	for p := 0; p < n; p++ {
		e, err := s.Estimate(t, platform.Proc(p), pol)
		if err != nil {
			return nil, err
		}
		buf[p] = e
	}
	return buf, nil
}

// BestEFT evaluates t on every processor and returns the estimate with the
// minimum EFT (Eq. 7); ties go to the lower processor index, keeping
// schedules deterministic.
//
//hdlts:hotpath
func (s *Schedule) BestEFT(t dag.TaskID, pol Policy) (Estimate, error) {
	var best Estimate
	found := false
	for p := 0; p < s.prob.NumProcs(); p++ {
		e, err := s.Estimate(t, platform.Proc(p), pol)
		if err != nil {
			return Estimate{}, err
		}
		if !found || e.EFT < best.EFT {
			best, found = e, true
		}
	}
	return best, nil
}

// Commit places task t per the estimate, materialising the entry duplicate
// first when the estimate relies on one.
//
//hdlts:hotpath
func (s *Schedule) Commit(e Estimate) error {
	if e.UseDuplicate {
		// The duplicate must copy a parentless parent of the committed task
		// (hand-built estimates could otherwise duplicate arbitrary tasks).
		valid := false
		for _, a := range s.prob.G.Preds(e.Task) {
			if a.Task == e.DupTask && s.prob.G.InDegree(a.Task) == 0 {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("sched: estimate for task %d names duplicate task %d, which is not a parentless parent", e.Task, e.DupTask)
		}
		if err := s.PlaceDuplicate(e.DupTask, e.Proc, e.DupStart); err != nil {
			return err
		}
		duplicateCount.Inc()
		if tr := s.prob.Tracer(); tr.Enabled() {
			tr.Emit(obs.Event{Type: obs.EvCommit, Task: int(e.DupTask), Proc: int(e.Proc), Start: e.DupStart, Finish: e.DupFinish, Dup: true})
		}
	}
	if err := s.Place(e.Task, e.Proc, e.EST); err != nil {
		return err
	}
	commitCount.Inc()
	if tr := s.prob.Tracer(); tr.Enabled() {
		tr.Emit(obs.Event{Type: obs.EvCommit, Task: int(e.Task), Proc: int(e.Proc), Start: e.EST, Finish: e.EFT})
	}
	return nil
}
