package sched

import (
	"fmt"
	"math"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
)

// Substrate metric series names.
const (
	metricEstimates  = "hdlts_sched_estimates_total"
	metricCommits    = "hdlts_sched_commits_total"
	metricDuplicates = "hdlts_sched_duplicates_total"
)

// Substrate-level metrics: every scheduler funnels through Estimate and
// Commit, so these counters measure decision cost uniformly across
// algorithms. They live in the default obs registry.
var (
	estimateCount  = obs.Default().Counter(metricEstimates)
	commitCount    = obs.Default().Counter(metricCommits)
	duplicateCount = obs.Default().Counter(metricDuplicates)
)

// Policy selects how EST/EFT are computed and how tasks are committed onto
// timelines. The paper's heuristics differ exactly along these two axes.
type Policy struct {
	// Insertion enables the insertion-based slot search (HEFT, CPOP, PETS,
	// PEFT). When false, placement is avail-based: EST = max(ready, Avail(p))
	// per Eq. (6), which is what HDLTS uses.
	Insertion bool
	// EntryDuplication enables Algorithm 1's effective entry-task
	// duplication: while estimating EST on processor p, a child of the entry
	// task may virtually restart the entry task at time 0 on p; the duplicate
	// is materialised at commit time only when it strictly improves the
	// committed start time (HDLTS, SDBATS).
	EntryDuplication bool
}

// HDLTSPolicy is the policy used by the paper's algorithm.
var HDLTSPolicy = Policy{Insertion: false, EntryDuplication: true}

// InsertionPolicy is the plain insertion-based policy of HEFT/PETS/PEFT/CPOP.
var InsertionPolicy = Policy{Insertion: true}

// Estimate is the result of evaluating one (task, processor) pair.
type Estimate struct {
	Task  dag.TaskID
	Proc  platform.Proc
	Ready float64 // earliest time all inputs are available on Proc
	EST   float64 // earliest start time (Eq. 6 or insertion slot)
	EFT   float64 // EST + W(task, Proc) (Eq. 7)
	// UseDuplicate is set when Ready relies on a not-yet-materialised entry
	// duplicate on Proc; committing this estimate must materialise it.
	UseDuplicate bool
	// DupTask is the parentless parent the duplicate copies (valid only
	// when UseDuplicate). Normalised problems have at most one candidate
	// (the unique entry); for raw multi-entry graphs only the first
	// parentless parent is ever considered, keeping the single-duplicate
	// estimate sound.
	DupTask dag.TaskID
	// DupStart/DupFinish describe the virtual duplicate when UseDuplicate.
	DupStart, DupFinish float64
}

// ReadyTime computes Ready(t, p) (Definition 5): the earliest time every
// parent output is available on processor p, taking all scheduled copies
// (including existing duplicates) into account. With entry duplication
// enabled it additionally considers restarting the entry-task parent at
// time 0 on p when no copy exists there and the [0, W(entry, p)) interval is
// idle; only the first parentless parent is considered (normalised problems
// have at most one). It reports whether the virtual duplicate lowered the
// ready time, which task it copies, and its would-be finish time.
//
// ReadyTime returns an error if some parent of t is still unscheduled: the
// caller must submit tasks in precedence order (the ITQ guarantees this).
//
//hdlts:hotpath
func (s *Schedule) ReadyTime(t dag.TaskID, p platform.Proc, pol Policy) (ready float64, usedDup bool, dupTask dag.TaskID, dupFinish float64, err error) {
	g := s.prob.G
	readyWith, readyWithout := 0.0, 0.0
	dupTask = dag.None
	dupFinish = math.NaN()
	dupConsidered := false
	for _, a := range g.Preds(t) {
		u := a.Task
		arr := s.arrivalFromCopies(u, a.Data, p)
		if math.IsInf(arr, 1) {
			return 0, false, dag.None, 0, fmt.Errorf("sched: parent %d of task %d is not scheduled yet", u, t)
		}
		arrWith := arr
		if pol.EntryDuplication && !dupConsidered && g.InDegree(u) == 0 {
			dupConsidered = true
			if !s.HasCopyOn(u, p) {
				if w := s.prob.Exec(u, p); s.FreeAt(p, 0, w) && w < arrWith {
					arrWith = w
					dupTask = u
					dupFinish = w
				}
			}
		}
		if arrWith > readyWith {
			readyWith = arrWith
		}
		if arr > readyWithout {
			readyWithout = arr
		}
	}
	if pol.EntryDuplication && dupTask != dag.None && readyWith < readyWithout {
		return readyWith, true, dupTask, dupFinish, nil
	}
	return readyWithout, false, dag.None, 0, nil
}

// Estimate evaluates task t on processor p under the policy: it computes
// Ready, EST, and EFT, deciding whether the virtual entry duplicate is
// actually beneficial for the *committed* start (a duplicate that does not
// strictly reduce EST is discarded, implementing "duplicate the entry task
// only if it helps to reduce the overall application execution time").
//
//hdlts:hotpath
func (s *Schedule) Estimate(t dag.TaskID, p platform.Proc, pol Policy) (Estimate, error) {
	estimateCount.Inc()
	dur := s.prob.Exec(t, p)

	ready, usedDup, dupTask, dupFinish, err := s.ReadyTime(t, p, pol)
	if err != nil {
		return Estimate{}, err
	}
	e := Estimate{Task: t, Proc: p, Ready: ready, EST: s.startFor(p, ready, dur, pol), DupTask: dag.None}
	if usedDup {
		// Compare against the duplication-free alternative; keep the
		// duplicate only when it strictly improves the start time.
		readyPlain, _, _, _, err := s.ReadyTime(t, p, Policy{Insertion: pol.Insertion})
		if err != nil {
			return Estimate{}, err
		}
		if estPlain := s.startFor(p, readyPlain, dur, pol); e.EST < estPlain {
			e.UseDuplicate = true
			e.DupTask = dupTask
			e.DupStart = 0
			e.DupFinish = dupFinish
		} else {
			e.Ready = readyPlain
			e.EST = estPlain
		}
	}
	e.EFT = e.EST + dur
	if tr := s.prob.Tracer(); tr.Enabled() {
		tr.Emit(obs.Event{Type: obs.EvEstimate, Task: int(t), Proc: int(p), Start: e.EST, Finish: e.EFT, Dup: e.UseDuplicate})
	}
	return e, nil
}

// startFor computes the earliest start for a task of length dur that is
// ready on processor p at time ready: the insertion-based slot search when
// the policy asks for it, avail-based placement (Eq. 6) otherwise.
//
//hdlts:hotpath
func (s *Schedule) startFor(p platform.Proc, ready, dur float64, pol Policy) float64 {
	if pol.Insertion {
		return s.EarliestFit(p, ready, dur)
	}
	if a := s.Avail(p); a > ready {
		return a
	}
	return ready
}

// EstimateAll evaluates t on every processor, reusing a caller-provided
// buffer when it has sufficient capacity. The result is indexed by
// processor.
//
//hdlts:hotpath
func (s *Schedule) EstimateAll(t dag.TaskID, pol Policy, buf []Estimate) ([]Estimate, error) {
	n := s.prob.NumProcs()
	if cap(buf) < n {
		buf = make([]Estimate, n)
	}
	buf = buf[:n]
	for p := 0; p < n; p++ {
		e, err := s.Estimate(t, platform.Proc(p), pol)
		if err != nil {
			return nil, err
		}
		buf[p] = e
	}
	return buf, nil
}

// BestEFT evaluates t on every processor and returns the estimate with the
// minimum EFT (Eq. 7); ties go to the lower processor index, keeping
// schedules deterministic.
//
//hdlts:hotpath
func (s *Schedule) BestEFT(t dag.TaskID, pol Policy) (Estimate, error) {
	var best Estimate
	found := false
	for p := 0; p < s.prob.NumProcs(); p++ {
		e, err := s.Estimate(t, platform.Proc(p), pol)
		if err != nil {
			return Estimate{}, err
		}
		if !found || e.EFT < best.EFT {
			best, found = e, true
		}
	}
	return best, nil
}

// Commit places task t per the estimate, materialising the entry duplicate
// first when the estimate relies on one.
//
//hdlts:hotpath
func (s *Schedule) Commit(e Estimate) error {
	if e.UseDuplicate {
		// The duplicate must copy a parentless parent of the committed task
		// (hand-built estimates could otherwise duplicate arbitrary tasks).
		valid := false
		for _, a := range s.prob.G.Preds(e.Task) {
			if a.Task == e.DupTask && s.prob.G.InDegree(a.Task) == 0 {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("sched: estimate for task %d names duplicate task %d, which is not a parentless parent", e.Task, e.DupTask)
		}
		if err := s.PlaceDuplicate(e.DupTask, e.Proc, e.DupStart); err != nil {
			return err
		}
		duplicateCount.Inc()
		if tr := s.prob.Tracer(); tr.Enabled() {
			tr.Emit(obs.Event{Type: obs.EvCommit, Task: int(e.DupTask), Proc: int(e.Proc), Start: e.DupStart, Finish: e.DupFinish, Dup: true})
		}
	}
	if err := s.Place(e.Task, e.Proc, e.EST); err != nil {
		return err
	}
	commitCount.Inc()
	if tr := s.prob.Tracer(); tr.Enabled() {
		tr.Emit(obs.Event{Type: obs.EvCommit, Task: int(e.Task), Proc: int(e.Proc), Start: e.EST, Finish: e.EFT})
	}
	return nil
}
