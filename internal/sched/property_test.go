package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

// randomPartialSchedule builds a random problem and places a random prefix
// of its tasks (in topological order) with random feasible choices, leaving
// the rest for estimator probing.
func randomPartialSchedule(rng *rand.Rand) (*Schedule, []dag.TaskID, error) {
	n := 2 + rng.Intn(30)
	procs := 1 + rng.Intn(5)
	g := dag.New(n)
	for i := 0; i < n; i++ {
		g.AddTask("")
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.2 {
				g.MustAddEdge(dag.TaskID(u), dag.TaskID(v), rng.Float64()*50)
			}
		}
	}
	w, err := platform.NewCosts(n, procs)
	if err != nil {
		return nil, nil, err
	}
	for t := 0; t < n; t++ {
		for p := 0; p < procs; p++ {
			if err := w.Set(t, platform.Proc(p), 1+rng.Float64()*20); err != nil {
				return nil, nil, err
			}
		}
	}
	pr, err := NewProblem(g, platform.MustUniform(procs), w)
	if err != nil {
		return nil, nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	s := NewSchedule(pr)
	placed := rng.Intn(len(order))
	for _, t := range order[:placed] {
		e, err := s.BestEFT(t, Policy{Insertion: rng.Intn(2) == 0})
		if err != nil {
			return nil, nil, err
		}
		if err := s.Commit(e); err != nil {
			return nil, nil, err
		}
	}
	return s, order[placed:], nil
}

// TestQuickEstimatorInvariants checks, for random partial schedules and
// every (pending-ready task, processor, policy) combination:
//
//   - EFT = EST + W (Eq. 7);
//   - EST >= Ready and EST >= 0;
//   - the insertion EST never exceeds the avail-based EST (a slot found by
//     insertion is at worst the end-of-timeline slot avail uses);
//   - the chosen slot is actually idle;
//   - BestEFT returns the minimum over EstimateAll.
func TestQuickEstimatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, pending, err := randomPartialSchedule(rng)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(pending) == 0 {
			return true
		}
		// Probe the first pending task whose parents are all placed.
		var probe dag.TaskID = dag.None
		for _, c := range pending {
			ok := true
			for _, a := range s.Problem().G.Preds(c) {
				if !s.Placed(a.Task) {
					ok = false
					break
				}
			}
			if ok {
				probe = c
				break
			}
		}
		if probe == dag.None {
			return true
		}
		for _, pol := range []Policy{{}, {Insertion: true}, HDLTSPolicy, {Insertion: true, EntryDuplication: true}} {
			es, err := s.EstimateAll(probe, pol, nil)
			if err != nil {
				t.Log(err)
				return false
			}
			best, err := s.BestEFT(probe, pol)
			if err != nil {
				return false
			}
			minEFT := es[0].EFT
			for _, e := range es {
				if e.EFT != e.EST+s.Problem().Exec(probe, e.Proc) {
					t.Logf("EFT != EST + W for task %d on P%d", probe, e.Proc+1)
					return false
				}
				if e.EST < e.Ready-1e-9 || e.EST < 0 {
					t.Logf("EST %g below ready %g", e.EST, e.Ready)
					return false
				}
				if !s.FreeAt(e.Proc, e.EST, s.Problem().Exec(probe, e.Proc)) {
					t.Logf("estimated slot not idle")
					return false
				}
				if e.EFT < minEFT {
					minEFT = e.EFT
				}
			}
			if best.EFT != minEFT {
				t.Logf("BestEFT %g != min %g", best.EFT, minEFT)
				return false
			}
		}
		// Insertion dominates avail-based per (task, proc).
		for p := 0; p < s.Problem().NumProcs(); p++ {
			ins, err := s.Estimate(probe, platform.Proc(p), Policy{Insertion: true})
			if err != nil {
				return false
			}
			av, err := s.Estimate(probe, platform.Proc(p), Policy{})
			if err != nil {
				return false
			}
			if ins.EST > av.EST+1e-9 {
				t.Logf("insertion EST %g exceeds avail EST %g", ins.EST, av.EST)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCommitMatchesEstimate: committing an estimate yields exactly the
// start/finish the estimate promised, under every policy.
func TestQuickCommitMatchesEstimate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, pending, err := randomPartialSchedule(rng)
		if err != nil || len(pending) == 0 {
			return err == nil
		}
		var probe dag.TaskID = dag.None
		for _, c := range pending {
			ok := true
			for _, a := range s.Problem().G.Preds(c) {
				if !s.Placed(a.Task) {
					ok = false
					break
				}
			}
			if ok {
				probe = c
				break
			}
		}
		if probe == dag.None {
			return true
		}
		best, err := s.BestEFT(probe, HDLTSPolicy)
		if err != nil {
			return false
		}
		if err := s.Commit(best); err != nil {
			t.Logf("commit failed: %v", err)
			return false
		}
		pl, ok := s.PlacementOf(probe)
		return ok && pl.Proc == best.Proc && pl.Start == best.EST && pl.Finish == best.EFT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
