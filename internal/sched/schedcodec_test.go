package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	_ = s.PlaceDuplicate(0, 1, 0)
	_ = s.Place(1, 1, 4)
	_ = s.Place(2, 1, 5)

	var buf bytes.Buffer
	if err := s.WriteScheduleJSON(&buf, "TEST"); err != nil {
		t.Fatal(err)
	}
	back, alg, err := ReadScheduleJSON(pr, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if alg != "TEST" {
		t.Errorf("algorithm = %q", alg)
	}
	if back.Makespan() != s.Makespan() {
		t.Errorf("makespan %g != %g", back.Makespan(), s.Makespan())
	}
	if back.NumDuplicates() != 1 {
		t.Errorf("duplicates = %d", back.NumDuplicates())
	}
	if err := back.Validate(); err != nil {
		t.Errorf("reconstructed schedule invalid: %v", err)
	}
	if diff, err := CompareSchedules(s, back); err != nil || len(diff) != 0 {
		t.Errorf("round trip changed placements: %v %v", diff, err)
	}
}

func TestWriteScheduleJSONIncomplete(t *testing.T) {
	pr := chainProblem(t)
	var buf bytes.Buffer
	if err := NewSchedule(pr).WriteScheduleJSON(&buf, ""); err == nil {
		t.Fatal("incomplete schedule serialised")
	}
}

func TestReadScheduleJSONRejectsCorruption(t *testing.T) {
	pr := chainProblem(t)
	cases := map[string]string{
		"garbage":      `{`,
		"unknown-task": `{"makespan":1,"placements":[{"task":9,"proc":0,"start":0,"finish":1}]}`,
		"unknown-proc": `{"makespan":1,"placements":[{"task":0,"proc":5,"start":0,"finish":1}]}`,
		"bad-finish":   `{"makespan":5,"placements":[{"task":0,"proc":0,"start":0,"finish":5}]}`,
		"incomplete":   `{"makespan":2,"placements":[{"task":0,"proc":0,"start":0,"finish":2}]}`,
		"double":       `{"makespan":2,"placements":[{"task":0,"proc":0,"start":0,"finish":2},{"task":0,"proc":1,"start":0,"finish":4}]}`,
		"bad-makespan": `{"makespan":99,"placements":[{"task":0,"proc":0,"start":0,"finish":2},{"task":1,"proc":0,"start":2,"finish":5},{"task":2,"proc":0,"start":5,"finish":7}]}`,
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadScheduleJSON(pr, strings.NewReader(raw)); err == nil {
				t.Fatalf("accepted %s", name)
			}
		})
	}
	// The valid variant of the bad-makespan fixture parses.
	ok := `{"makespan":7,"placements":[{"task":0,"proc":0,"start":0,"finish":2},{"task":1,"proc":0,"start":2,"finish":5},{"task":2,"proc":0,"start":5,"finish":7}]}`
	if _, _, err := ReadScheduleJSON(pr, strings.NewReader(ok)); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}
