package sched

import (
	"errors"
	"strings"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

func TestValidateIncomplete(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	err := s.Validate()
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Validate = %v, want ErrIncomplete", err)
	}
}

func TestValidateHappyPath(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	// A on P1 [0,2); B on P2 must wait for comm: ready 2+5=7, [7,8);
	// C on P2 local: [8,10).
	_ = s.Place(0, 0, 0)
	_ = s.Place(1, 1, 7)
	_ = s.Place(2, 1, 8)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestValidateCatchesPrematureStart(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0) // A [0,2) on P1
	_ = s.Place(1, 1, 3) // B on P2 at 3 < ready 7: infeasible
	_ = s.Place(2, 1, 20)
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "before parent") {
		t.Fatalf("premature start not caught: %v", err)
	}
}

func TestValidateChecksDuplicatePrecedence(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	_ = s.Place(1, 0, 2)
	_ = s.Place(2, 0, 5)
	// A duplicate of the middle task at time 0 on P2 cannot have received
	// its parent's output (arrival there is 2 + 5 = 7).
	if err := s.PlaceDuplicate(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "before parent") {
		t.Fatalf("infeasible duplicate not caught: %v", err)
	}

	// The same duplicate placed after the data arrives is legal (DHEFT-style
	// general duplication).
	s2 := NewSchedule(pr)
	_ = s2.Place(0, 0, 0)
	_ = s2.Place(1, 0, 2)
	_ = s2.Place(2, 0, 5)
	if err := s2.PlaceDuplicate(1, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("feasible non-entry duplicate rejected: %v", err)
	}
}

func TestValidateAcceptsDuplicateFed(t *testing.T) {
	// B on P2 fed by a duplicate of A on P2 placed at [0,4): B may start at
	// 4 even though the remote copy would only arrive at 2+5=7.
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	if err := s.PlaceDuplicate(0, 1, 0); err != nil { // [0,4) on P2
		t.Fatal(err)
	}
	_ = s.Place(1, 1, 4)
	_ = s.Place(2, 1, 5)
	if err := s.Validate(); err != nil {
		t.Fatalf("duplicate-fed schedule rejected: %v", err)
	}
}

func TestValidateChecksDurationConsistency(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	_ = s.Place(1, 1, 7)
	_ = s.Place(2, 1, 8)
	// Corrupt a finish time directly (white-box).
	s.primary[2].Finish = 11
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "finishes at") {
		t.Fatalf("duration corruption not caught: %v", err)
	}
}

func TestValidateChecksOverlapFromRawSlots(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	_ = s.Place(1, 0, 7)
	_ = s.Place(2, 0, 10)
	// Corrupt the timeline directly (white-box): force an overlap.
	s.timelines[0].slots[1].Start = 1
	s.primary[1].Start = 1
	s.primary[1].Finish = 1 + pr.Exec(1, 0)
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlap corruption not caught: %v", err)
	}
}

func TestValidatePseudoTasksZeroCost(t *testing.T) {
	// Normalised multi-entry problem: pseudo entry with zero cost placed at
	// time 0 anywhere must validate.
	g := dag.New(2)
	g.AddTask("a")
	g.AddTask("b")
	w := platform.MustCostsFromRows([][]float64{{2, 2}, {3, 3}})
	pr := MustProblem(g, platform.MustUniform(2), w).Normalize()

	s := NewSchedule(pr)
	// pseudo entry id 2, pseudo exit id 3
	_ = s.Place(2, 0, 0)
	_ = s.Place(0, 0, 0)
	_ = s.Place(1, 1, 0)
	_ = s.Place(3, 0, 3)
	if err := s.Validate(); err != nil {
		t.Fatalf("pseudo-task schedule rejected: %v", err)
	}
	if mk := s.Makespan(); mk != 3 {
		t.Fatalf("makespan = %g, want 3", mk)
	}
}
