package sched

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
)

// metricValidate is the feasibility re-check latency series.
const metricValidate = "hdlts_sched_validate_seconds"

// validateTime records full feasibility re-checks, which dominate
// experiment runs with Config.Validate set.
var validateTime = obs.Default().Histogram(metricValidate)

// ErrIncomplete is wrapped by Validate when some task has no placement.
var ErrIncomplete = errors.New("sched: schedule is incomplete")

// eps absorbs floating-point rounding in feasibility comparisons.
const eps = 1e-9

// Validate re-checks a complete schedule from first principles,
// independently of the invariants enforced during construction:
//
//  1. every task has exactly one primary placement with Finish = Start + W;
//  2. duplicates have consistent durations and no processor hosts two
//     copies of the same task (duplicates of any task are allowed — entry
//     tasks for HDLTS/SDBATS, arbitrary parents for DHEFT — because rule 4
//     holds for every copy, a duplicate can never launder an infeasible
//     start);
//  3. no two slots on one processor overlap;
//  4. precedence with communication: every copy of every task starts no
//     earlier than the earliest moment each parent's output can reach its
//     processor, considering all copies of the parent (Definition 5).
//
// It returns nil for a feasible schedule.
func (s *Schedule) Validate() error {
	defer validateTime.ObserveSince(time.Now())
	g := s.prob.G
	for t := 0; t < s.prob.NumTasks(); t++ {
		id := dag.TaskID(t)
		pl, ok := s.PlacementOf(id)
		if !ok {
			return fmt.Errorf("%w: task %d has no placement", ErrIncomplete, t)
		}
		if want := pl.Start + s.prob.Exec(id, pl.Proc); math.Abs(pl.Finish-want) > eps {
			return fmt.Errorf("sched: task %d on P%d finishes at %g, want %g", t, pl.Proc+1, pl.Finish, want)
		}
		if pl.Start < 0 {
			return fmt.Errorf("sched: task %d starts at negative time %g", t, pl.Start)
		}
		for _, d := range s.dups[id] {
			if want := d.Start + s.prob.Exec(id, d.Proc); math.Abs(d.Finish-want) > eps {
				return fmt.Errorf("sched: duplicate of task %d on P%d finishes at %g, want %g", t, d.Proc+1, d.Finish, want)
			}
		}
		seen := map[int]bool{}
		for _, c := range s.Copies(id) {
			if seen[int(c.Proc)] {
				return fmt.Errorf("sched: task %d has two copies on P%d", t, c.Proc+1)
			}
			seen[int(c.Proc)] = true
		}
	}

	// Per-processor overlap, re-derived from the slot lists. Zero-duration
	// slots (pseudo tasks) occupy no time and may legally sit anywhere.
	for p := range s.timelines {
		prev := Slot{Task: dag.None}
		for _, sl := range s.timelines[p].snapshot() {
			if sl.Dur() == 0 {
				continue
			}
			if prev.Task != dag.None && sl.Start < prev.End-eps {
				return fmt.Errorf("sched: P%d slots overlap: task %d [%g,%g) and task %d [%g,%g)",
					p+1, prev.Task, prev.Start, prev.End, sl.Task, sl.Start, sl.End)
			}
			prev = sl
		}
	}

	// Precedence + communication feasibility for every copy of every task.
	for t := 0; t < s.prob.NumTasks(); t++ {
		id := dag.TaskID(t)
		for _, c := range s.Copies(id) {
			for _, a := range g.Preds(id) {
				arr := s.arrivalFromCopies(a.Task, a.Data, c.Proc)
				if c.Start < arr-eps {
					return fmt.Errorf("sched: task %d starts at %g on P%d before parent %d's data arrives at %g",
						t, c.Start, c.Proc+1, a.Task, arr)
				}
			}
		}
	}
	return nil
}
