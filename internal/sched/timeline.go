package sched

import (
	"fmt"
	"sort"

	"hdlts/internal/dag"
)

// Slot is one occupied interval [Start, End) on a processor timeline.
type Slot struct {
	Start, End float64
	Task       dag.TaskID
	// Duplicate marks redundant copies placed by entry-task duplication; the
	// primary copy of every task has Duplicate == false.
	Duplicate bool
}

// Dur returns the slot length.
func (s Slot) Dur() float64 { return s.End - s.Start }

// timeline is the occupied-interval set of one processor, kept sorted by
// start time. Intervals are half-open, so zero-duration slots (pseudo tasks)
// never conflict with anything.
//
// Alongside the slots it maintains maxEnd, the running maximum of slot ends
// in start order: maxEnd[i] = max(slots[0].End, ..., slots[i].End). Ends are
// not themselves monotone — a zero-duration pseudo-task slot may start after
// a longer slot yet end before it — so the prefix maximum is what makes the
// conflict and gap searches below binary instead of linear.
type timeline struct {
	slots  []Slot
	maxEnd []float64
}

// avail returns the paper's Avail(m_p) (Definition 3): the finish time of
// the last task on the processor, or 0 when it is idle.
func (tl *timeline) avail() float64 {
	if len(tl.slots) == 0 {
		return 0
	}
	// Slots are sorted by start and non-overlapping, so the last slot also
	// has the greatest end.
	return tl.slots[len(tl.slots)-1].End
}

// freeAt reports whether the interval [start, start+dur) is entirely idle.
//
//hdlts:hotpath
func (tl *timeline) freeAt(start, dur float64) bool {
	if dur == 0 {
		return true
	}
	end := start + dur
	// Only slots with Start < end can clash, and among those a clash means
	// some End > start — i.e. the prefix maximum of their ends exceeds start.
	i := sort.Search(len(tl.slots), func(i int) bool { return tl.slots[i].Start >= end })
	return i == 0 || tl.maxEnd[i-1] <= start
}

// earliestFit returns the earliest start >= ready at which a task of length
// dur fits, using the insertion-based policy of HEFT/PETS/PEFT: find the
// first idle gap between consecutive slots and fall back to the end of the
// timeline. The prefix of slots that finish by ready is skipped with two
// binary searches; the remaining tail is the original linear gap scan.
//
//hdlts:hotpath
func (tl *timeline) earliestFit(ready, dur float64) float64 {
	if dur == 0 {
		return ready
	}
	n := len(tl.slots)
	// j0: first slot not wholly before ready. Every slot left of j0 has
	// finished by ready, so the candidate gap start up to j0 is ready itself.
	j0 := sort.Search(n, func(i int) bool { return tl.maxEnd[i] > ready })
	// j1: first slot starting at or after ready+dur. If it lies within the
	// finished-by-ready prefix, [ready, ready+dur) fits in front of it.
	j1 := sort.Search(n, func(i int) bool { return tl.slots[i].Start >= ready+dur })
	if j1 < n && j1 <= j0 {
		return ready
	}
	prevEnd := 0.0
	if j0 > 0 {
		prevEnd = tl.maxEnd[j0-1]
	}
	for _, s := range tl.slots[j0:] {
		gapStart := prevEnd
		if gapStart < ready {
			gapStart = ready
		}
		if gapStart+dur <= s.Start {
			return gapStart
		}
		if s.End > prevEnd {
			prevEnd = s.End
		}
	}
	if prevEnd < ready {
		prevEnd = ready
	}
	return prevEnd
}

// insert adds a slot, preserving order, and rejects overlap.
//
//hdlts:hotpath
func (tl *timeline) insert(s Slot) error {
	if s.Start < 0 || s.End < s.Start {
		return fmt.Errorf("sched: invalid slot [%g, %g) for task %d", s.Start, s.End, s.Task)
	}
	if !tl.freeAt(s.Start, s.Dur()) {
		return fmt.Errorf("sched: slot [%g, %g) for task %d overlaps an existing reservation", s.Start, s.End, s.Task)
	}
	i := sort.Search(len(tl.slots), func(i int) bool { return tl.slots[i].Start > s.Start })
	tl.slots = append(tl.slots, Slot{})
	copy(tl.slots[i+1:], tl.slots[i:])
	tl.slots[i] = s
	// Rebuild the running maximum from the insertion point. Appends (the
	// common case for avail-based placement) cost O(1); a middle insert costs
	// O(s−i), the same as the slot shift above.
	tl.maxEnd = append(tl.maxEnd, 0)
	for j := i; j < len(tl.slots); j++ {
		m := tl.slots[j].End
		if j > 0 && tl.maxEnd[j-1] > m {
			m = tl.maxEnd[j-1]
		}
		tl.maxEnd[j] = m
	}
	return nil
}

// reset empties the timeline, retaining capacity for reuse.
func (tl *timeline) reset() {
	tl.slots = tl.slots[:0]
	tl.maxEnd = tl.maxEnd[:0]
}

// snapshot returns a copy of the slots (for rendering and inspection).
func (tl *timeline) snapshot() []Slot {
	return append([]Slot(nil), tl.slots...)
}
