package sched

import (
	"fmt"
	"sort"

	"hdlts/internal/dag"
)

// Slot is one occupied interval [Start, End) on a processor timeline.
type Slot struct {
	Start, End float64
	Task       dag.TaskID
	// Duplicate marks redundant copies placed by entry-task duplication; the
	// primary copy of every task has Duplicate == false.
	Duplicate bool
}

// Dur returns the slot length.
func (s Slot) Dur() float64 { return s.End - s.Start }

// timeline is the occupied-interval set of one processor, kept sorted by
// start time. Intervals are half-open, so zero-duration slots (pseudo tasks)
// never conflict with anything.
type timeline struct {
	slots []Slot
}

// avail returns the paper's Avail(m_p) (Definition 3): the finish time of
// the last task on the processor, or 0 when it is idle.
func (tl *timeline) avail() float64 {
	if len(tl.slots) == 0 {
		return 0
	}
	// Slots are sorted by start and non-overlapping, so the last slot also
	// has the greatest end.
	return tl.slots[len(tl.slots)-1].End
}

// freeAt reports whether the interval [start, start+dur) is entirely idle.
//
//hdlts:hotpath
func (tl *timeline) freeAt(start, dur float64) bool {
	if dur == 0 {
		return true
	}
	end := start + dur
	// Find the first slot with Start >= end; everything before it could clash.
	i := sort.Search(len(tl.slots), func(i int) bool { return tl.slots[i].Start >= end })
	for j := 0; j < i; j++ {
		if tl.slots[j].End > start {
			return false
		}
	}
	return true
}

// earliestFit returns the earliest start >= ready at which a task of length
// dur fits, using the insertion-based policy of HEFT/PETS/PEFT: scan idle
// gaps between consecutive slots and fall back to the end of the timeline.
//
//hdlts:hotpath
func (tl *timeline) earliestFit(ready, dur float64) float64 {
	if dur == 0 {
		return ready
	}
	prevEnd := 0.0
	for _, s := range tl.slots {
		gapStart := prevEnd
		if gapStart < ready {
			gapStart = ready
		}
		if gapStart+dur <= s.Start {
			return gapStart
		}
		if s.End > prevEnd {
			prevEnd = s.End
		}
	}
	if prevEnd < ready {
		prevEnd = ready
	}
	return prevEnd
}

// insert adds a slot, preserving order, and rejects overlap.
//
//hdlts:hotpath
func (tl *timeline) insert(s Slot) error {
	if s.Start < 0 || s.End < s.Start {
		return fmt.Errorf("sched: invalid slot [%g, %g) for task %d", s.Start, s.End, s.Task)
	}
	if !tl.freeAt(s.Start, s.Dur()) {
		return fmt.Errorf("sched: slot [%g, %g) for task %d overlaps an existing reservation", s.Start, s.End, s.Task)
	}
	i := sort.Search(len(tl.slots), func(i int) bool { return tl.slots[i].Start > s.Start })
	tl.slots = append(tl.slots, Slot{})
	copy(tl.slots[i+1:], tl.slots[i:])
	tl.slots[i] = s
	return nil
}

// snapshot returns a copy of the slots (for rendering and inspection).
func (tl *timeline) snapshot() []Slot {
	return append([]Slot(nil), tl.slots...)
}
