package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimelineAvail(t *testing.T) {
	var tl timeline
	if tl.avail() != 0 {
		t.Fatalf("empty avail = %g, want 0", tl.avail())
	}
	if err := tl.insert(Slot{Start: 5, End: 9, Task: 0}); err != nil {
		t.Fatal(err)
	}
	if err := tl.insert(Slot{Start: 0, End: 3, Task: 1}); err != nil {
		t.Fatal(err)
	}
	if tl.avail() != 9 {
		t.Fatalf("avail = %g, want 9", tl.avail())
	}
}

func TestTimelineOverlapRejection(t *testing.T) {
	var tl timeline
	if err := tl.insert(Slot{Start: 2, End: 6, Task: 0}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Slot{
		{Start: 0, End: 3, Task: 1},
		{Start: 5, End: 7, Task: 1},
		{Start: 3, End: 4, Task: 1},
		{Start: 2, End: 6, Task: 1},
	} {
		if err := tl.insert(s); err == nil {
			t.Errorf("overlap [%g,%g) accepted", s.Start, s.End)
		}
	}
	// Touching intervals are fine (half-open).
	if err := tl.insert(Slot{Start: 6, End: 8, Task: 1}); err != nil {
		t.Errorf("adjacent slot rejected: %v", err)
	}
	if err := tl.insert(Slot{Start: 0, End: 2, Task: 2}); err != nil {
		t.Errorf("preceding adjacent slot rejected: %v", err)
	}
}

func TestTimelineRejectsMalformedSlots(t *testing.T) {
	var tl timeline
	if err := tl.insert(Slot{Start: -1, End: 2}); err == nil {
		t.Error("negative start accepted")
	}
	if err := tl.insert(Slot{Start: 3, End: 2}); err == nil {
		t.Error("end < start accepted")
	}
}

func TestZeroDurationSlots(t *testing.T) {
	var tl timeline
	if err := tl.insert(Slot{Start: 4, End: 8, Task: 0}); err != nil {
		t.Fatal(err)
	}
	// A zero-length pseudo-task slot never conflicts, even inside busy time.
	if err := tl.insert(Slot{Start: 5, End: 5, Task: 1}); err != nil {
		t.Errorf("zero-duration slot rejected: %v", err)
	}
	if !tl.freeAt(3, 0) {
		t.Error("freeAt with dur 0 should always hold")
	}
}

func TestEarliestFitGaps(t *testing.T) {
	var tl timeline
	for _, s := range []Slot{{Start: 0, End: 4, Task: 0}, {Start: 10, End: 12, Task: 1}, {Start: 20, End: 25, Task: 2}} {
		if err := tl.insert(s); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		ready, dur, want float64
	}{
		{0, 3, 4},   // fits the [4,10) gap
		{0, 6, 4},   // exactly fills [4,10)
		{0, 7, 12},  // too big for [4,10), fits [12,20)
		{5, 5, 5},   // ready inside the gap, still fits
		{6, 5, 12},  // ready leaves only 4 units in [4,10)
		{0, 9, 25},  // only fits at the very end
		{30, 2, 30}, // ready beyond the last slot
		{11, 1, 12}, // ready inside a busy slot -> next gap
		{0, 0, 0},   // zero duration starts at ready
		{22, 0, 22}, // zero duration even inside busy time
	}
	for _, c := range cases {
		if got := tl.earliestFit(c.ready, c.dur); got != c.want {
			t.Errorf("earliestFit(ready=%g, dur=%g) = %g, want %g", c.ready, c.dur, got, c.want)
		}
	}
}

func TestEarliestFitEmpty(t *testing.T) {
	var tl timeline
	if got := tl.earliestFit(7, 3); got != 7 {
		t.Fatalf("earliestFit on empty = %g, want 7", got)
	}
}

// TestQuickTimelineInvariant: after arbitrary successful insertions the slot
// list is sorted and non-overlapping, earliestFit always returns a feasible
// start, and freeAt agrees with insert.
func TestQuickTimelineInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tl timeline
		for i := 0; i < 40; i++ {
			start := float64(rng.Intn(100))
			dur := float64(rng.Intn(10))
			free := tl.freeAt(start, dur)
			err := tl.insert(Slot{Start: start, End: start + dur, Task: 0})
			if free != (err == nil) {
				return false
			}
		}
		if !sort.SliceIsSorted(tl.slots, func(i, j int) bool { return tl.slots[i].Start < tl.slots[j].Start }) {
			return false
		}
		// Non-empty slots must not overlap (zero-duration pseudo slots may
		// legitimately sit inside busy intervals).
		prevEnd := 0.0
		for _, s := range tl.slots {
			if s.Dur() == 0 {
				continue
			}
			if s.Start < prevEnd {
				return false
			}
			prevEnd = s.End
		}
		for i := 0; i < 20; i++ {
			ready := float64(rng.Intn(120))
			dur := float64(1 + rng.Intn(10))
			at := tl.earliestFit(ready, dur)
			if at < ready || !tl.freeAt(at, dur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEarliestFitIsEarliest: no feasible start earlier than the one
// earliestFit returns exists on integer grid points.
func TestQuickEarliestFitIsEarliest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tl timeline
		for i := 0; i < 15; i++ {
			start := float64(rng.Intn(50))
			dur := float64(1 + rng.Intn(6))
			_ = tl.insert(Slot{Start: start, End: start + dur, Task: 0})
		}
		ready := float64(rng.Intn(40))
		dur := float64(1 + rng.Intn(6))
		at := tl.earliestFit(ready, dur)
		for s := ready; s < at; s++ {
			if tl.freeAt(s, dur) {
				return false // found an earlier feasible integer start
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
