package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
)

func TestCompactIncomplete(t *testing.T) {
	pr := chainProblem(t)
	if _, err := NewSchedule(pr).Compact(); err == nil {
		t.Fatal("compacted an incomplete schedule")
	}
}

func TestCompactRemovesSlack(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	// Wasteful but valid: A [0,2) on P1; B delayed to [20,21) on P2 (ready
	// at 7); C [30,32) on P2 (ready at 21).
	_ = s.Place(0, 0, 0)
	_ = s.Place(1, 1, 20)
	_ = s.Place(2, 1, 30)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("compacted schedule invalid: %v", err)
	}
	// B should pull back to 7 (comm-bound) and C to 8: makespan 10.
	if got := c.Makespan(); got != 10 {
		t.Fatalf("compacted makespan = %g, want 10", got)
	}
	// Assignments and order preserved.
	for task := 0; task < 3; task++ {
		orig, _ := s.PlacementOf(dag.TaskID(task))
		comp, _ := c.PlacementOf(dag.TaskID(task))
		if orig.Proc != comp.Proc {
			t.Fatalf("task %d moved from P%d to P%d", task, orig.Proc+1, comp.Proc+1)
		}
	}
}

func TestCompactKeepsDuplicates(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	_ = s.PlaceDuplicate(0, 1, 5) // late duplicate of A on P2 [5,9)
	_ = s.Place(1, 1, 12)         // B fed by the duplicate, slack of 3
	_ = s.Place(2, 1, 16)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumDuplicates() != 1 {
		t.Fatalf("duplicates = %d, want 1", c.NumDuplicates())
	}
	// The duplicate pulls to [0,4), B to 4, C to 5: makespan 7.
	if got := c.Makespan(); got != 7 {
		t.Fatalf("compacted makespan = %g, want 7", got)
	}
}

// TestQuickCompactNeverWorsens: compacting any complete feasible schedule
// yields a valid schedule with makespan <= the original, preserving every
// task's processor.
func TestQuickCompactNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, pending, err := randomPartialSchedule(rng)
		if err != nil {
			return false
		}
		// Finish the schedule with randomly chosen feasible placements.
		for _, task := range pending {
			e, err := s.BestEFT(task, Policy{Insertion: rng.Intn(2) == 0})
			if err != nil {
				return false
			}
			// Inject slack sometimes to give compaction work to do.
			slack := float64(rng.Intn(3)) * 7
			start := e.EST + slack
			if !s.FreeAt(e.Proc, start, s.Problem().Exec(task, e.Proc)) {
				start = e.EST
			}
			if err := s.Place(task, e.Proc, start); err != nil {
				return false
			}
		}
		if err := s.Validate(); err != nil {
			return false
		}
		c, err := s.Compact()
		if err != nil {
			t.Logf("compact: %v", err)
			return false
		}
		if err := c.Validate(); err != nil {
			t.Logf("compacted invalid: %v", err)
			return false
		}
		if c.Makespan() > s.Makespan()+1e-9 {
			t.Logf("compaction worsened: %g -> %g", s.Makespan(), c.Makespan())
			return false
		}
		for task := 0; task < s.Problem().NumTasks(); task++ {
			a, _ := s.PlacementOf(dag.TaskID(task))
			b, _ := c.PlacementOf(dag.TaskID(task))
			if a.Proc != b.Proc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
