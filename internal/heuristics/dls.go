package heuristics

import (
	"math"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// DLS is Dynamic Level Scheduling (Sih & Lee, TPDS 1993) — a classic
// dynamic list scheduler included beyond the paper's comparison set because
// it is the closest published ancestor of HDLTS's "recompute priorities
// against current processor state" idea.
//
// At every step DLS evaluates all (ready task, processor) pairs and picks
// the pair with the largest dynamic level
//
//	DL(t, p) = SL(t) − EST(t, p) + Δ(t, p)
//
// where SL is the static level (longest mean-execution-time path from t to
// an exit, communication ignored), EST is the avail-based earliest start
// time, and Δ(t, p) = w̄(t) − w(t, p) rewards placing a task on a processor
// that runs it faster than average.
type DLS struct{}

// NewDLS returns the DLS scheduler.
func NewDLS() *DLS { return &DLS{} }

// Name implements sched.Algorithm.
func (*DLS) Name() string { return "DLS" }

// Schedule implements sched.Algorithm.
func (*DLS) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("DLS")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	g := pr.G
	sl, err := g.DownwardDistance(meanNode(pr), dag.ZeroEdges)
	if err != nil {
		return nil, err
	}

	s := sched.NewSchedule(pr)
	remaining := make([]int, g.NumTasks())
	var ready []dag.TaskID
	for t := 0; t < g.NumTasks(); t++ {
		remaining[t] = g.InDegree(dag.TaskID(t))
		if remaining[t] == 0 {
			ready = append(ready, dag.TaskID(t))
		}
	}

	pol := sched.Policy{} // avail-based, no duplication, per the original
	for len(ready) > 0 {
		bestDL := math.Inf(-1)
		var best sched.Estimate
		bestIdx := -1
		for i, t := range ready {
			mean := pr.W.Mean(int(t))
			for p := 0; p < pr.NumProcs(); p++ {
				e, err := s.Estimate(t, platform.Proc(p), pol)
				if err != nil {
					return nil, err
				}
				dl := sl[t] - e.EST + (mean - pr.Exec(t, platform.Proc(p)))
				// Ties break toward the smaller task ID then the lower
				// processor index (ready is kept in ascending ID order and
				// processors are scanned in order, so strict > suffices).
				if dl > bestDL {
					bestDL, best, bestIdx = dl, e, i
				}
			}
		}
		if err := s.Commit(best); err != nil {
			return nil, err
		}
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		for _, a := range g.Succs(best.Task) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				ready = insertSorted(ready, a.Task)
			}
		}
	}
	if !s.Complete() {
		return nil, errStalled("DLS", s)
	}
	return s, nil
}

// insertSorted keeps the ready list ascending by task ID.
func insertSorted(ready []dag.TaskID, t dag.TaskID) []dag.TaskID {
	i := len(ready)
	for i > 0 && ready[i-1] > t {
		i--
	}
	ready = append(ready, 0)
	copy(ready[i+1:], ready[i:])
	ready[i] = t
	return ready
}
