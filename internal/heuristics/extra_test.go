package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// TestExtraSchedulersValidOnExample pins the extra reference schedulers'
// makespans on the Fig. 1 instance and validates their schedules. The
// values are hand-pinned regression anchors (no published reference exists
// for this instance), so a change in any of them signals a behavioural
// change in the shared substrate.
func TestExtraSchedulersValidOnExample(t *testing.T) {
	pr := workflows.PaperExample()
	for _, alg := range []sched.Algorithm{NewDLS(), NewMCT(), NewMinMin(), NewMaxMin()} {
		s, err := alg.Schedule(pr)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", alg.Name(), err)
		}
		mk := s.Makespan()
		if mk < 73 || mk > 130 {
			t.Errorf("%s makespan %g implausible for this instance", alg.Name(), mk)
		}
		t.Logf("%s: makespan %g", alg.Name(), mk)
	}
}

// TestQuickExtraSchedulersProduceValidSchedules extends the central
// property test to the extra schedulers.
func TestQuickExtraSchedulersProduceValidSchedules(t *testing.T) {
	algs := []sched.Algorithm{NewDLS(), NewMCT(), NewMinMin(), NewMaxMin()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := randomProblem(rng)
		if err != nil {
			return false
		}
		lb, err := pr.CPMinLowerBound()
		if err != nil {
			return false
		}
		for _, alg := range algs {
			s, err := alg.Schedule(pr)
			if err != nil {
				t.Logf("%s: %v", alg.Name(), err)
				return false
			}
			if err := s.Validate(); err != nil {
				t.Logf("%s: %v", alg.Name(), err)
				return false
			}
			if s.Makespan() < lb-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDLSPrefersFasterProcessor: with one ready task, DLS must choose the
// processor maximising Δ − EST, i.e. the fastest one on an idle platform.
func TestDLSPrefersFasterProcessor(t *testing.T) {
	g := dag.New(1)
	g.AddTask("only")
	w := platform.MustCostsFromRows([][]float64{{10, 2, 7}})
	pr := sched.MustProblem(g, platform.MustUniform(3), w)
	s, err := NewDLS().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := s.PlacementOf(0)
	if pl.Proc != 1 {
		t.Fatalf("DLS chose P%d, want P2", pl.Proc+1)
	}
}

// TestMinMinMaxMinOrdering: on two independent tasks (one long, one short)
// over one processor, MinMin runs the short task first and MaxMin the long
// one.
func TestMinMinMaxMinOrdering(t *testing.T) {
	g := dag.New(2)
	g.AddTask("short")
	g.AddTask("long")
	w := platform.MustCostsFromRows([][]float64{{2}, {9}})
	pr := sched.MustProblem(g, platform.MustUniform(1), w)

	s, err := NewMinMin().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Normalisation adds pseudo entry/exit; the original tasks keep IDs 0/1.
	shortPl, _ := s.PlacementOf(0)
	longPl, _ := s.PlacementOf(1)
	if !(shortPl.Start < longPl.Start) {
		t.Errorf("MinMin ran long first: short %g, long %g", shortPl.Start, longPl.Start)
	}

	s, err = NewMaxMin().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	shortPl, _ = s.PlacementOf(0)
	longPl, _ = s.PlacementOf(1)
	if !(longPl.Start < shortPl.Start) {
		t.Errorf("MaxMin ran short first: short %g, long %g", shortPl.Start, longPl.Start)
	}
}

func TestInsertSorted(t *testing.T) {
	var r []dag.TaskID
	for _, v := range []dag.TaskID{5, 1, 9, 3, 3} {
		r = insertSorted(r, v)
	}
	want := []dag.TaskID{1, 3, 3, 5, 9}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("insertSorted = %v, want %v", r, want)
		}
	}
}

func TestExtraSchedulerNames(t *testing.T) {
	for alg, want := range map[sched.Algorithm]string{
		NewDLS(): "DLS", NewMCT(): "MCT", NewMinMin(): "MinMin", NewMaxMin(): "MaxMin",
	} {
		if alg.Name() != want {
			t.Errorf("Name = %q, want %q", alg.Name(), want)
		}
	}
}
