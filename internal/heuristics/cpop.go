package heuristics

import (
	"math"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// CPOP is the Critical-Path-on-Processor algorithm (Topcuoglu, Hariri, Wu
// 2002). Task priority is rank_u + rank_d; the tasks forming the critical
// path (priority equal to the entry task's, walked along successors) are all
// pinned to the single processor that minimises the path's total execution
// time, while every other task goes to its minimum insertion-based EFT
// processor. Ready tasks are dispatched from a priority queue.
type CPOP struct {
	// Pol is the placement policy; canonical CPOP uses insertion.
	Pol sched.Policy
}

// NewCPOP returns the canonical (insertion-based) CPOP scheduler.
func NewCPOP() *CPOP { return &CPOP{Pol: sched.InsertionPolicy} }

// Name implements sched.Algorithm.
func (*CPOP) Name() string { return "CPOP" }

// Schedule implements sched.Algorithm.
func (c *CPOP) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("CPOP")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	g := pr.G
	var prio []float64
	var err error
	prof.Do(obs.PhaseRank, func() {
		var up, down []float64
		up, err = UpwardRank(pr, meanNode(pr))
		if err != nil {
			return
		}
		down, err = DownwardRank(pr)
		if err != nil {
			return
		}
		prio = make([]float64, g.NumTasks())
		for i := range prio {
			prio[i] = up[i] + down[i]
		}
	})
	if err != nil {
		return nil, err
	}

	// Walk the critical path: start at the entry; repeatedly follow the
	// successor whose priority equals the path length |CP| (fp-tolerant,
	// preferring the largest-priority successor).
	entry := g.Entry()
	cpLen := prio[entry]
	onCP := make([]bool, g.NumTasks())
	const tol = 1e-9
	for t := entry; ; {
		onCP[t] = true
		var next dag.TaskID = dag.None
		bestPrio := math.Inf(-1)
		for _, a := range g.Succs(t) {
			if prio[a.Task] > bestPrio {
				bestPrio, next = prio[a.Task], a.Task
			}
		}
		if next == dag.None {
			break
		}
		// The true CP successor has priority == |CP| up to rounding; the
		// max-priority successor is that task.
		_ = cpLen
		if bestPrio < -tol {
			break
		}
		t = next
	}

	// p_CP minimises the total execution time of the CP tasks.
	bestProc, bestSum := platform.Proc(0), math.Inf(1)
	for p := 0; p < pr.NumProcs(); p++ {
		sum := 0.0
		for t := 0; t < g.NumTasks(); t++ {
			if onCP[t] {
				sum += pr.Exec(dag.TaskID(t), platform.Proc(p))
			}
		}
		if sum < bestSum {
			bestSum, bestProc = sum, platform.Proc(p)
		}
	}

	s := sched.NewSchedule(pr)
	remaining := make([]int, g.NumTasks())
	q := &taskHeap{prio: prio}
	for t := 0; t < g.NumTasks(); t++ {
		remaining[t] = g.InDegree(dag.TaskID(t))
		if remaining[t] == 0 {
			q.push(dag.TaskID(t))
		}
	}
	eftAcc := prof.Accum(obs.PhaseEFT)
	insAcc := prof.Accum(obs.PhaseInsertion)
	defer eftAcc.Flush()
	defer insAcc.Flush()
	for q.len() > 0 {
		t := q.pop()
		var est sched.Estimate
		eftTick := eftAcc.Tick()
		if onCP[t] {
			est, err = s.Estimate(t, bestProc, c.Pol)
		} else {
			est, err = s.BestEFT(t, c.Pol)
		}
		eftTick.End()
		if err != nil {
			return nil, err
		}
		insTick := insAcc.Tick()
		err = s.Commit(est)
		insTick.End()
		if err != nil {
			return nil, err
		}
		for _, a := range g.Succs(t) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				q.push(a.Task)
			}
		}
	}
	return s, nil
}
