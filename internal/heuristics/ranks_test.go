package heuristics

import (
	"math"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// TestHEFTUpwardRanksMatchPublished checks rank_u on the Fig. 1 example
// against the values printed in the original HEFT paper (Topcuoglu et al.,
// TPDS 2002, Table 2): t1 108.000, t2 77.000, t3 80.000, t4 80.000,
// t5 69.000, t6 63.333, t7 42.667, t8 35.667, t9 44.333, t10 14.667.
func TestHEFTUpwardRanksMatchPublished(t *testing.T) {
	pr := workflows.PaperExample()
	rank, err := UpwardRank(pr, meanNode(pr))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{108, 77, 80, 80, 69, 63.333, 42.667, 35.667, 44.333, 14.667}
	for i, w := range want {
		if math.Abs(rank[i]-w) > 0.01 {
			t.Errorf("rank_u(T%d) = %.3f, want %.3f", i+1, rank[i], w)
		}
	}
}

func TestDownwardRankProperties(t *testing.T) {
	pr := workflows.PaperExample()
	down, err := DownwardRank(pr)
	if err != nil {
		t.Fatal(err)
	}
	if down[0] != 0 {
		t.Errorf("rank_d(entry) = %g, want 0", down[0])
	}
	// rank_d(T10) = max over preds; via T3-T7: w̄(T1)+c(1,3)+w̄(T3)+c(3,7)+w̄(T7)+c(7,10).
	// Verify the recurrence holds for every task instead of one hand value.
	g := pr.G
	for u := 0; u < g.NumTasks(); u++ {
		want := 0.0
		for _, a := range g.Preds(dag.TaskID(u)) {
			v := down[a.Task] + pr.W.Mean(int(a.Task)) + pr.MeanComm(a.Data)
			if v > want {
				want = v
			}
		}
		if math.Abs(down[u]-want) > 1e-9 {
			t.Errorf("rank_d(T%d) = %g, want %g", u+1, down[u], want)
		}
	}
}

func TestOrderByRankDescIsTopological(t *testing.T) {
	pr := workflows.PaperExample()
	rank, err := UpwardRank(pr, meanNode(pr))
	if err != nil {
		t.Fatal(err)
	}
	order, err := orderByRankDesc(pr.G, rank)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for u := 0; u < pr.G.NumTasks(); u++ {
		for _, a := range pr.G.Succs(dag.TaskID(u)) {
			if pos[u] >= pos[a.Task] {
				t.Fatalf("rank order violates precedence: T%d after T%d", u+1, a.Task+1)
			}
		}
	}
	// The published HEFT order on this example starts T1, {T3, T4}, T2, T5
	// (T3 and T4 both have rank exactly 80.000 — the tie is arbitrary).
	if order[0] != 0 || order[3] != 1 || order[4] != 4 {
		t.Fatalf("order = %v..., want T1, {T3,T4}, T2, T5", order[:5])
	}
	if !(order[1] == 2 && order[2] == 3) && !(order[1] == 3 && order[2] == 2) {
		t.Fatalf("positions 2-3 = %v, want {T3, T4} in some order", order[1:3])
	}
}

// TestSigmaRankUsesSampleStdDev pins SDBATS's task weight to the sample σ of
// the cost rows.
func TestSigmaRankUsesSampleStdDev(t *testing.T) {
	pr := workflows.PaperExample()
	n := sigmaNode(pr)
	// Row T10 = {21, 7, 16}: mean 14.667, devs 6.333/-7.667/1.333,
	// squares sum 100.667, /2 = 50.333, σ = 7.0946.
	if got := n(dag.TaskID(9)); math.Abs(got-7.0946) > 0.001 {
		t.Errorf("σ(T10) = %.4f, want 7.0946", got)
	}
}

func TestScheduleByListRejectsBadOrder(t *testing.T) {
	// A child placed before its parent must surface an error, not panic.
	g := dag.New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 1)
	w := platform.MustCostsFromRows([][]float64{{1, 1}, {1, 1}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w)
	if _, err := scheduleByList(pr, []dag.TaskID{b, a}, sched.InsertionPolicy, nil); err == nil {
		t.Fatal("precedence-violating list accepted")
	}
}
