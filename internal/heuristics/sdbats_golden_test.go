package heuristics

import (
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/workflows"
)

// TestSDBATSGoldenSchedule pins the complete hand-derived SDBATS schedule
// on the Fig. 1 example (worked step by step in EXPERIMENTS.md's Table I
// section): σ-weighted ranks give the order T1, T3, T4, T2, T6, T5, T7,
// T9, T8, T10; the entry is duplicated on both idle processors
// unconditionally; insertion-based min-EFT placement then yields makespan
// 74 — the value the paper quotes for SDBATS.
func TestSDBATSGoldenSchedule(t *testing.T) {
	pr := workflows.PaperExample()
	s, err := NewSDBATS().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if got := s.Makespan(); got != 74 {
		t.Fatalf("makespan = %g, want 74", got)
	}

	want := []struct {
		task   int // 1-based
		proc   int // 1-based
		start  float64
		finish float64
	}{
		{1, 3, 0, 9},
		{2, 3, 9, 27},
		{3, 1, 14, 25},
		{4, 2, 16, 24},
		{5, 1, 25, 37},
		{6, 3, 27, 36},
		{7, 1, 37, 44},
		{8, 1, 51, 56},
		{9, 2, 50, 62},
		{10, 2, 67, 74},
	}
	for _, w := range want {
		pl, ok := s.PlacementOf(dag.TaskID(w.task - 1))
		if !ok {
			t.Fatalf("T%d unscheduled", w.task)
		}
		if int(pl.Proc)+1 != w.proc || pl.Start != w.start || pl.Finish != w.finish {
			t.Errorf("T%d: got P%d [%g,%g), want P%d [%g,%g)",
				w.task, pl.Proc+1, pl.Start, pl.Finish, w.proc, w.start, w.finish)
		}
	}

	// Entry duplicates on P1 [0,14) and P2 [0,16).
	if s.NumDuplicates() != 2 {
		t.Fatalf("duplicates = %d, want 2", s.NumDuplicates())
	}
	for _, d := range []struct {
		proc   platform.Proc
		finish float64
	}{{0, 14}, {1, 16}} {
		found := false
		for _, c := range s.Copies(0) {
			if c.Duplicate && c.Proc == d.proc && c.Start == 0 && c.Finish == d.finish {
				found = true
			}
		}
		if !found {
			t.Errorf("missing entry duplicate on P%d finishing at %g", d.proc+1, d.finish)
		}
	}
}
