package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

func TestDHEFTOnPaperExample(t *testing.T) {
	pr := workflows.PaperExample()
	s, err := NewDHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	heft, err := NewHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() > heft.Makespan() {
		t.Fatalf("DHEFT (%g) worse than HEFT (%g); duplication is only ever accepted when it lowers an EFT",
			s.Makespan(), heft.Makespan())
	}
	t.Logf("DHEFT makespan %g (HEFT %g), %d duplicates", s.Makespan(), heft.Makespan(), s.NumDuplicates())
}

// TestDHEFTDuplicatesCriticalParent builds an instance where duplication is
// clearly profitable: a middle task whose output is huge to ship but cheap
// to recompute.
func TestDHEFTDuplicatesCriticalParent(t *testing.T) {
	g := dag.New(3)
	a := g.AddTask("A")
	b := g.AddTask("B")
	c := g.AddTask("C")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 100) // shipping B's output is prohibitive
	w := platform.MustCostsFromRows([][]float64{
		{2, 2},
		{3, 3},
		{50, 4}, // C only runs fast on P2
	})
	pr := sched.MustProblem(g, platform.MustUniform(2), w)
	s, err := NewDHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Without duplication: A,B on one proc, C either local (exec 50) or
	// remote after comm 100. With B duplicated next to C on P2, C starts as
	// soon as the duplicate finishes.
	heft, err := NewHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.Makespan() < heft.Makespan()) {
		t.Fatalf("DHEFT (%g) failed to beat HEFT (%g) on a duplication-friendly instance", s.Makespan(), heft.Makespan())
	}
	if s.NumDuplicates() == 0 {
		t.Fatal("no duplicate placed")
	}
}

// TestQuickDHEFTValidAndNeverWorseThanHEFT: DHEFT only accepts a duplicate
// when it strictly lowers the chosen EFT, so per-decision it dominates
// HEFT; over a whole schedule greedy interactions can occasionally invert,
// so assert validity always and dominance statistically.
func TestQuickDHEFTValidAndNeverWorseThanHEFT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := randomProblem(rng)
		if err != nil {
			return false
		}
		s, err := NewDHEFT().Schedule(pr)
		if err != nil {
			t.Logf("DHEFT: %v", err)
			return false
		}
		if err := s.Validate(); err != nil {
			t.Logf("DHEFT invalid: %v", err)
			return false
		}
		lb, err := pr.CPMinLowerBound()
		if err != nil {
			return false
		}
		return s.Makespan() >= lb-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}

	// Statistical dominance over HEFT.
	rng := rand.New(rand.NewSource(321))
	var sumD, sumH float64
	for i := 0; i < 80; i++ {
		pr, err := randomProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDHEFT().Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHEFT().Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		sumD += d.Makespan()
		sumH += h.Makespan()
	}
	if sumD > sumH*1.001 {
		t.Fatalf("DHEFT mean makespan %.4g exceeds HEFT's %.4g", sumD/80, sumH/80)
	}
}
