package heuristics

import (
	"fmt"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/sched"
)

// This file adds the classic greedy ready-set heuristics — MCT, Min-Min,
// and Max-Min — adapted from independent-task scheduling to workflow DAGs
// by restricting them to the current ready set. They are not part of the
// paper's comparison but are standard reference points for any HCE
// scheduling library and serve as weak baselines in the test suite.

// greedyRun factors the shared dynamic loop: maintain the ready set, let
// pick choose the next task (given each ready task's best estimate), and
// commit it. Estimates use insertion-based placement, the stronger and more
// common choice for these heuristics.
func greedyRun(name string, pr *sched.Problem, pick func(best []sched.Estimate) int) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor(name)
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	g := pr.G
	s := sched.NewSchedule(pr)
	remaining := make([]int, g.NumTasks())
	var ready []dag.TaskID
	for t := 0; t < g.NumTasks(); t++ {
		remaining[t] = g.InDegree(dag.TaskID(t))
		if remaining[t] == 0 {
			ready = append(ready, dag.TaskID(t))
		}
	}
	eftAcc := prof.Accum(obs.PhaseEFT)
	insAcc := prof.Accum(obs.PhaseInsertion)
	defer eftAcc.Flush()
	defer insAcc.Flush()
	for len(ready) > 0 {
		best := make([]sched.Estimate, len(ready))
		eftTick := eftAcc.Tick()
		for i, t := range ready {
			e, err := s.BestEFT(t, sched.InsertionPolicy)
			if err != nil {
				return nil, err
			}
			best[i] = e
		}
		eftTick.End()
		idx := pick(best)
		if idx < 0 || idx >= len(ready) {
			return nil, fmt.Errorf("heuristics: %s picked out-of-range index %d", name, idx)
		}
		chosen := best[idx]
		insTick := insAcc.Tick()
		err := s.Commit(chosen)
		insTick.End()
		if err != nil {
			return nil, err
		}
		ready = append(ready[:idx], ready[idx+1:]...)
		for _, a := range g.Succs(chosen.Task) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				ready = insertSorted(ready, a.Task)
			}
		}
	}
	if !s.Complete() {
		return nil, errStalled(name, s)
	}
	return s, nil
}

// errStalled reports an incomplete dynamic run (defensive; cannot happen
// for well-formed DAGs).
func errStalled(name string, s *sched.Schedule) error {
	return fmt.Errorf("heuristics: %s stalled with %d/%d tasks placed", name, s.NumPlaced(), s.Problem().NumTasks())
}

// MCT (Minimum Completion Time) dispatches ready tasks in task-ID order,
// each to its minimum-EFT processor — the simplest dynamic baseline.
type MCT struct{}

// NewMCT returns the MCT scheduler.
func NewMCT() *MCT { return &MCT{} }

// Name implements sched.Algorithm.
func (*MCT) Name() string { return "MCT" }

// Schedule implements sched.Algorithm.
func (*MCT) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	return greedyRun("MCT", pr, func([]sched.Estimate) int { return 0 })
}

// MinMin repeatedly starts the ready task with the *smallest* best EFT —
// finish the quick work first, keeping processors busy.
type MinMin struct{}

// NewMinMin returns the Min-Min scheduler.
func NewMinMin() *MinMin { return &MinMin{} }

// Name implements sched.Algorithm.
func (*MinMin) Name() string { return "MinMin" }

// Schedule implements sched.Algorithm.
func (*MinMin) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	return greedyRun("MinMin", pr, func(best []sched.Estimate) int {
		idx := 0
		for i, e := range best {
			if e.EFT < best[idx].EFT {
				idx = i
			}
		}
		return idx
	})
}

// MaxMin repeatedly starts the ready task with the *largest* best EFT —
// push the long poles early so they do not dominate the tail.
type MaxMin struct{}

// NewMaxMin returns the Max-Min scheduler.
func NewMaxMin() *MaxMin { return &MaxMin{} }

// Name implements sched.Algorithm.
func (*MaxMin) Name() string { return "MaxMin" }

// Schedule implements sched.Algorithm.
func (*MaxMin) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	return greedyRun("MaxMin", pr, func(best []sched.Estimate) int {
		idx := 0
		for i, e := range best {
			if e.EFT > best[idx].EFT {
				idx = i
			}
		}
		return idx
	})
}
