package heuristics

import (
	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// PEFT is the Predict Earliest Finish Time algorithm (Arabnejad, Barbosa
// 2014). It precomputes the Optimistic Cost Table
//
//	OCT(t, p) = max over successors s of
//	            min over processors q of ( OCT(s, q) + W(s, q) + c̄(t,s) if q ≠ p else 0 )
//
// (zero for the exit task), prioritises ready tasks by rank_oct(t) = mean
// over processors of OCT(t, p), and maps each to the processor minimising
// the *optimistic* EFT, O_EFT(t, p) = EFT(t, p) + OCT(t, p), with the
// insertion policy. Complexity O(V² · P).
type PEFT struct {
	// Pol is the placement policy; canonical PEFT uses insertion.
	Pol sched.Policy
}

// NewPEFT returns the canonical (insertion-based) PEFT scheduler.
func NewPEFT() *PEFT { return &PEFT{Pol: sched.InsertionPolicy} }

// Name implements sched.Algorithm.
func (*PEFT) Name() string { return "PEFT" }

// oct computes the optimistic cost table as a flat row-major n×p slice:
// OCT(t, p) lives at table[t*p+p]. One allocation instead of n+1, and the
// inner recurrence runs in O(E·P) rather than O(E·P²): for each successor
// the per-processor candidate costs c(q) = OCT(s, q) + W(s, q) are computed
// once, and min over q of (c(q) + c̄ if q ≠ pk) collapses to
// min(c(pk), m + c̄) where m is the minimum of c over q ≠ pk — the overall
// minimum m1, or the second minimum m2 when pk is itself the argmin.
func oct(pr *sched.Problem) ([]float64, error) {
	g := pr.G
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n, p := g.NumTasks(), pr.NumProcs()
	table := make([]float64, n*p)
	cand := make([]float64, p) // c(q) scratch for the current successor
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		row := table[int(t)*p : int(t)*p+p]
		for _, a := range g.Succs(t) {
			s := a.Task
			comm := pr.MeanComm(a.Data)
			srow := table[int(s)*p : int(s)*p+p]
			m1, m2 := -1.0, -1.0
			p1 := -1
			for q := 0; q < p; q++ {
				c := srow[q] + pr.Exec(s, platform.Proc(q))
				cand[q] = c
				switch {
				case m1 < 0 || c < m1:
					m2, m1, p1 = m1, c, q
				case m2 < 0 || c < m2:
					m2 = c
				}
			}
			for pk := 0; pk < p; pk++ {
				m := m1
				if pk == p1 {
					m = m2
				}
				minCost := cand[pk]
				if m >= 0 && m+comm < minCost {
					minCost = m + comm
				}
				if minCost > row[pk] {
					row[pk] = minCost
				}
			}
		}
	}
	return table, nil
}

// Schedule implements sched.Algorithm.
func (pe *PEFT) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("PEFT")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	g := pr.G
	np := pr.NumProcs()
	var table []float64
	var rank []float64
	var err error
	prof.Do(obs.PhaseRank, func() {
		table, err = oct(pr)
		if err != nil {
			return
		}
		rank = make([]float64, g.NumTasks())
		for t := range rank {
			sum := 0.0
			for _, v := range table[t*np : t*np+np] {
				sum += v
			}
			rank[t] = sum / float64(np)
		}
	})
	if err != nil {
		return nil, err
	}

	s := sched.NewSchedule(pr)
	remaining := make([]int, g.NumTasks())
	q := &taskHeap{prio: rank}
	for t := 0; t < g.NumTasks(); t++ {
		remaining[t] = g.InDegree(dag.TaskID(t))
		if remaining[t] == 0 {
			q.push(dag.TaskID(t))
		}
	}
	eftAcc := prof.Accum(obs.PhaseEFT)
	insAcc := prof.Accum(obs.PhaseInsertion)
	defer eftAcc.Flush()
	defer insAcc.Flush()
	for q.len() > 0 {
		t := q.pop()
		var best sched.Estimate
		bestOEFT := -1.0
		eftTick := eftAcc.Tick()
		for p := 0; p < np; p++ {
			e, err := s.Estimate(t, platform.Proc(p), pe.Pol)
			if err != nil {
				return nil, err
			}
			if oeft := e.EFT + table[int(t)*np+p]; bestOEFT < 0 || oeft < bestOEFT {
				bestOEFT, best = oeft, e
			}
		}
		eftTick.End()
		insTick := insAcc.Tick()
		err = s.Commit(best)
		insTick.End()
		if err != nil {
			return nil, err
		}
		for _, a := range g.Succs(t) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				q.push(a.Task)
			}
		}
	}
	return s, nil
}
