package heuristics

import (
	"container/heap"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// PEFT is the Predict Earliest Finish Time algorithm (Arabnejad, Barbosa
// 2014). It precomputes the Optimistic Cost Table
//
//	OCT(t, p) = max over successors s of
//	            min over processors q of ( OCT(s, q) + W(s, q) + c̄(t,s) if q ≠ p else 0 )
//
// (zero for the exit task), prioritises ready tasks by rank_oct(t) = mean
// over processors of OCT(t, p), and maps each to the processor minimising
// the *optimistic* EFT, O_EFT(t, p) = EFT(t, p) + OCT(t, p), with the
// insertion policy. Complexity O(V² · P).
type PEFT struct {
	// Pol is the placement policy; canonical PEFT uses insertion.
	Pol sched.Policy
}

// NewPEFT returns the canonical (insertion-based) PEFT scheduler.
func NewPEFT() *PEFT { return &PEFT{Pol: sched.InsertionPolicy} }

// Name implements sched.Algorithm.
func (*PEFT) Name() string { return "PEFT" }

// oct computes the optimistic cost table, rows indexed by task.
func oct(pr *sched.Problem) ([][]float64, error) {
	g := pr.G
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n, p := g.NumTasks(), pr.NumProcs()
	table := make([][]float64, n)
	for i := range table {
		table[i] = make([]float64, p)
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		for pk := 0; pk < p; pk++ {
			best := 0.0
			for _, a := range g.Succs(t) {
				s := a.Task
				comm := pr.MeanComm(a.Data)
				minCost := -1.0
				for q := 0; q < p; q++ {
					c := table[s][q] + pr.Exec(s, platform.Proc(q))
					if q != pk {
						c += comm
					}
					if minCost < 0 || c < minCost {
						minCost = c
					}
				}
				if minCost > best {
					best = minCost
				}
			}
			table[t][pk] = best
		}
	}
	return table, nil
}

// Schedule implements sched.Algorithm.
func (pe *PEFT) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("PEFT")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	g := pr.G
	var table [][]float64
	var rank []float64
	var err error
	prof.Do(obs.PhaseRank, func() {
		table, err = oct(pr)
		if err != nil {
			return
		}
		rank = make([]float64, g.NumTasks())
		for t := range rank {
			sum := 0.0
			for _, v := range table[t] {
				sum += v
			}
			rank[t] = sum / float64(pr.NumProcs())
		}
	})
	if err != nil {
		return nil, err
	}

	s := sched.NewSchedule(pr)
	remaining := make([]int, g.NumTasks())
	q := &priorityQueue{prio: rank}
	heap.Init(q)
	for t := 0; t < g.NumTasks(); t++ {
		remaining[t] = g.InDegree(dag.TaskID(t))
		if remaining[t] == 0 {
			heap.Push(q, dag.TaskID(t))
		}
	}
	eftAcc := prof.Accum(obs.PhaseEFT)
	insAcc := prof.Accum(obs.PhaseInsertion)
	defer eftAcc.Flush()
	defer insAcc.Flush()
	for q.Len() > 0 {
		t := heap.Pop(q).(dag.TaskID)
		var best sched.Estimate
		bestOEFT := -1.0
		eftTick := eftAcc.Tick()
		for p := 0; p < pr.NumProcs(); p++ {
			e, err := s.Estimate(t, platform.Proc(p), pe.Pol)
			if err != nil {
				return nil, err
			}
			if oeft := e.EFT + table[t][p]; bestOEFT < 0 || oeft < bestOEFT {
				bestOEFT, best = oeft, e
			}
		}
		eftTick.End()
		insTick := insAcc.Tick()
		err = s.Commit(best)
		insTick.End()
		if err != nil {
			return nil, err
		}
		for _, a := range g.Succs(t) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				heap.Push(q, a.Task)
			}
		}
	}
	return s, nil
}
