package heuristics

import "hdlts/internal/dag"

// taskHeap is a max-heap of ready tasks keyed by a fixed priority vector,
// with task-ID tie-breaks for determinism. It replaces container/heap in the
// dispatch loops of CPOP and PEFT: the stdlib interface boxes every pushed
// and popped TaskID through `any` and calls Less/Swap through the interface
// table, which dominates queue cost on large graphs. Priorities are read
// from prio (indexed by task), so the heap itself stores only IDs.
type taskHeap struct {
	ids  []dag.TaskID
	prio []float64
}

// less reports whether task a dispatches before task b: higher priority
// first, smaller ID on ties.
func (h *taskHeap) less(a, b dag.TaskID) bool {
	if h.prio[a] != h.prio[b] {
		return h.prio[a] > h.prio[b]
	}
	return a < b
}

func (h *taskHeap) len() int { return len(h.ids) }

// push adds t to the heap.
func (h *taskHeap) push(t dag.TaskID) {
	h.ids = append(h.ids, t)
	// Sift up.
	ids := h.ids
	i := len(ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(ids[i], ids[parent]) {
			break
		}
		ids[i], ids[parent] = ids[parent], ids[i]
		i = parent
	}
}

// pop removes and returns the highest-priority task.
func (h *taskHeap) pop() dag.TaskID {
	ids := h.ids
	top := ids[0]
	last := len(ids) - 1
	ids[0] = ids[last]
	h.ids = ids[:last]
	// Sift down.
	ids = h.ids
	n := len(ids)
	i := 0
	for {
		best := i
		if l := 2*i + 1; l < n && h.less(ids[l], ids[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && h.less(ids[r], ids[best]) {
			best = r
		}
		if best == i {
			break
		}
		ids[i], ids[best] = ids[best], ids[i]
		i = best
	}
	return top
}
