// Package heuristics implements the five published list-scheduling baselines
// the paper evaluates HDLTS against: HEFT and CPOP (Topcuoglu, Hariri, Wu,
// TPDS 2002), PETS (Ilavarasan, Thambidurai, Mahilmannan, ISPDC 2005), PEFT
// (Arabnejad, Barbosa, TPDS 2014), and SDBATS (Munir et al., IPDPSW 2013).
// All operate on the shared sched substrate, so schedules from every
// algorithm validate under identical feasibility rules.
package heuristics

import (
	"slices"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/sched"
)

// meanNode returns the node-weight function w̄(t) = mean execution time of t
// across processors (Eq. 1).
func meanNode(pr *sched.Problem) dag.WeightFunc {
	return func(t dag.TaskID) float64 { return pr.W.Mean(int(t)) }
}

// meanEdge returns the edge-weight function c̄(u,v) = mean communication time
// across distinct processor pairs (the data volume itself under uniform
// bandwidth).
func meanEdge(pr *sched.Problem) dag.EdgeWeightFunc {
	return func(_, _ dag.TaskID, data float64) float64 { return pr.MeanComm(data) }
}

// sigmaNode returns the node-weight function σ(t) = sample standard
// deviation of t's execution times across processors (SDBATS's key weight).
func sigmaNode(pr *sched.Problem) dag.WeightFunc {
	return func(t dag.TaskID) float64 { return pr.W.SampleStdDev(int(t)) }
}

// UpwardRank computes rank_u for every task under the given node weight and
// mean communication edge weight:
//
//	rank_u(t) = w(t) + max over successors s of (c̄(t,s) + rank_u(s))
//
// HEFT and CPOP use w = mean cost; SDBATS uses w = σ of costs.
func UpwardRank(pr *sched.Problem, node dag.WeightFunc) ([]float64, error) {
	return pr.G.DownwardDistance(node, meanEdge(pr))
}

// DownwardRank computes rank_d for every task (CPOP):
//
//	rank_d(t) = max over predecessors u of (rank_d(u) + w̄(u) + c̄(u,t))
//
// with rank_d(entry) = 0.
func DownwardRank(pr *sched.Problem) ([]float64, error) {
	order, err := pr.G.TopoOrder()
	if err != nil {
		return nil, err
	}
	node := meanNode(pr)
	edge := meanEdge(pr)
	rank := make([]float64, pr.NumTasks())
	for _, t := range order {
		best := 0.0
		for _, a := range pr.G.Preds(t) {
			if v := rank[a.Task] + node(a.Task) + edge(a.Task, t, a.Data); v > best {
				best = v
			}
		}
		rank[t] = best
	}
	return rank, nil
}

// orderByRankDesc returns task IDs sorted by descending rank. The sort is
// stable over a topological base order, so equal-rank tasks (e.g. zero-cost
// pseudo entries) keep a precedence-compatible relative order, making the
// result always a valid scheduling list.
func orderByRankDesc(g *dag.Graph, rank []float64) ([]dag.TaskID, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	slices.SortStableFunc(order, func(a, b dag.TaskID) int {
		switch {
		case rank[a] > rank[b]:
			return -1
		case rank[a] < rank[b]:
			return 1
		}
		return 0
	})
	return order, nil
}

// scheduleByList places tasks in the given order, each on its minimum-EFT
// processor under the policy, attributing EFT evaluation and commit time
// to prof's eft/insertion phases (prof may be nil). The order must be
// precedence-compatible.
//
//hdlts:hotpath
func scheduleByList(pr *sched.Problem, order []dag.TaskID, pol sched.Policy, prof *obs.Profile) (*sched.Schedule, error) {
	s := sched.NewSchedule(pr)
	eftAcc := prof.Accum(obs.PhaseEFT)
	insAcc := prof.Accum(obs.PhaseInsertion)
	defer eftAcc.Flush()
	defer insAcc.Flush()
	for _, t := range order {
		eftTick := eftAcc.Tick()
		best, err := s.BestEFT(t, pol)
		eftTick.End()
		if err != nil {
			return nil, err
		}
		insTick := insAcc.Tick()
		err = s.Commit(best)
		insTick.End()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}
