package heuristics

import (
	"math"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// DHEFT is Duplication-based HEFT, the task-duplication representative the
// paper's Related Work (Section II-B) describes: "The Duplication Based
// Heterogeneous Earliest Finish Time (DHEFT) introduces the concept of
// duplication in HEFT algorithm that reduces the makespan significantly"
// (after Zhang, Inoguchi, Shen 2004).
//
// Tasks are prioritised and dispatched exactly like HEFT (upward rank on
// mean costs, insertion-based placement). Additionally, when evaluating
// task t on processor p, if t's start is bound by the data arrival from its
// *critical parent* (the parent whose output arrives last), DHEFT tries to
// duplicate that parent into an idle slot on p: the duplicate must itself
// respect the parent's own input arrivals, and is kept only when it
// strictly lowers t's EFT on p. One duplication level is considered per
// placement (no recursive chains), which is the standard low-cost variant.
type DHEFT struct{}

// NewDHEFT returns the DHEFT scheduler.
func NewDHEFT() *DHEFT { return &DHEFT{} }

// Name implements sched.Algorithm.
func (*DHEFT) Name() string { return "DHEFT" }

// dupPlan describes one candidate duplication for committing.
type dupPlan struct {
	parent dag.TaskID
	start  float64
}

// dheftEstimate evaluates t on p, optionally with a critical-parent
// duplication. It returns the chosen estimate and the duplication to
// materialise (nil if none).
func dheftEstimate(s *sched.Schedule, t dag.TaskID, p platform.Proc) (sched.Estimate, *dupPlan, error) {
	base, err := s.Estimate(t, p, sched.InsertionPolicy)
	if err != nil {
		return sched.Estimate{}, nil, err
	}
	g := s.Problem().G

	// Find the critical parent: the one whose arrival on p equals Ready.
	var critical dag.TaskID = dag.None
	worst := -1.0
	for _, a := range g.Preds(t) {
		arr := math.Inf(1)
		for _, c := range s.Copies(a.Task) {
			if v := c.Finish + s.Problem().Comm(a.Data, c.Proc, p); v < arr {
				arr = v
			}
		}
		if arr > worst {
			worst, critical = arr, a.Task
		}
	}
	if critical == dag.None || s.HasCopyOn(critical, p) {
		return base, nil, nil
	}
	// The duplication can only help when the critical arrival binds the
	// start time (otherwise the processor or another parent is the
	// bottleneck anyway).
	if worst < base.EST-1e-12 {
		return base, nil, nil
	}

	// Earliest feasible start of the duplicate on p: when the parent's own
	// inputs reach p (the parent's parents are already scheduled because t
	// is dispatched in precedence order).
	dupReady := 0.0
	for _, a := range g.Preds(critical) {
		arr := math.Inf(1)
		for _, c := range s.Copies(a.Task) {
			if v := c.Finish + s.Problem().Comm(a.Data, c.Proc, p); v < arr {
				arr = v
			}
		}
		if math.IsInf(arr, 1) {
			return base, nil, nil // defensive: unscheduled grandparent
		}
		if arr > dupReady {
			dupReady = arr
		}
	}
	dupDur := s.Problem().Exec(critical, p)
	dupStart := s.EarliestFit(p, dupReady, dupDur)
	dupFinish := dupStart + dupDur

	// Recompute t's ready time with the duplicate virtually in place: the
	// critical parent now arrives at min(remote arrival, local duplicate).
	ready := math.Min(dupFinish, worst)
	for _, a := range g.Preds(t) {
		if a.Task == critical {
			continue
		}
		arr := math.Inf(1)
		for _, c := range s.Copies(a.Task) {
			if v := c.Finish + s.Problem().Comm(a.Data, c.Proc, p); v < arr {
				arr = v
			}
		}
		if arr > ready {
			ready = arr
		}
	}

	// The duplicate occupies its slot, so search t's slot as if it were
	// taken: the earliest fit at or after max(ready, dupFinish) that does
	// not intersect [dupStart, dupFinish).
	dur := s.Problem().Exec(t, p)
	start := s.EarliestFit(p, ready, dur)
	if start < dupFinish && start+dur > dupStart {
		start = s.EarliestFit(p, dupFinish, dur)
	}
	if eft := start + dur; eft < base.EFT-1e-12 {
		est := sched.Estimate{Task: t, Proc: p, Ready: ready, EST: start, EFT: eft}
		return est, &dupPlan{parent: critical, start: dupStart}, nil
	}
	return base, nil, nil
}

// Schedule implements sched.Algorithm.
func (*DHEFT) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("DHEFT")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	rank, err := UpwardRank(pr, meanNode(pr))
	if err != nil {
		return nil, err
	}
	order, err := orderByRankDesc(pr.G, rank)
	if err != nil {
		return nil, err
	}
	s := sched.NewSchedule(pr)
	for _, t := range order {
		var best sched.Estimate
		var bestDup *dupPlan
		for p := 0; p < pr.NumProcs(); p++ {
			e, dup, err := dheftEstimate(s, t, platform.Proc(p))
			if err != nil {
				return nil, err
			}
			if p == 0 || e.EFT < best.EFT {
				best, bestDup = e, dup
			}
		}
		if bestDup != nil {
			if err := s.PlaceDuplicate(bestDup.parent, best.Proc, bestDup.start); err != nil {
				return nil, err
			}
		}
		if err := s.Place(best.Task, best.Proc, best.EST); err != nil {
			return nil, err
		}
	}
	return s, nil
}
