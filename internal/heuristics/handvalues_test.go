package heuristics

import (
	"math"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// tinyFork builds A -> {B, C} with fixed costs for hand-computed checks:
//
//	costs (2 procs):  A: 4/6   B: 2/10   C: 8/4
//	edges:            A->B data 3, A->C data 5
func tinyFork(t *testing.T) *sched.Problem {
	t.Helper()
	g := dag.New(3)
	a := g.AddTask("A")
	b := g.AddTask("B")
	c := g.AddTask("C")
	g.MustAddEdge(a, b, 3)
	g.MustAddEdge(a, c, 5)
	w := platform.MustCostsFromRows([][]float64{{4, 6}, {2, 10}, {8, 4}})
	return sched.MustProblem(g, platform.MustUniform(2), w)
}

// TestPETSRanksHandComputed pins the PETS rank formula on tinyFork:
//
//	ACC(A)=5, DTC(A)=3+5=8, RPT(A)=0        -> rank 13
//	ACC(B)=6, DTC(B)=0, RPT(B)=rank(A)=13   -> rank 19
//	ACC(C)=6, DTC(C)=0, RPT(C)=13           -> rank 19
func TestPETSRanksHandComputed(t *testing.T) {
	pr := tinyFork(t).Normalize()
	g := pr.G
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	rank := make([]float64, g.NumTasks())
	for _, level := range levels {
		for _, id := range level {
			acc := pr.W.Mean(int(id))
			dtc := 0.0
			for _, a := range g.Succs(id) {
				dtc += pr.MeanComm(a.Data)
			}
			rpt := 0.0
			for _, a := range g.Preds(id) {
				if rank[a.Task] > rpt {
					rpt = rank[a.Task]
				}
			}
			rank[id] = math.Round(acc + dtc + rpt)
		}
	}
	want := []float64{13, 19, 19}
	for i, w := range want {
		if rank[i] != w {
			t.Errorf("rank(%s) = %g, want %g", g.Task(dag.TaskID(i)).Name, rank[i], w)
		}
	}
}

// TestPEFTOCTHandComputed pins the optimistic cost table on tinyFork.
//
// Exit tasks B and C have OCT = 0 on both processors. For A:
//
//	via B: min( OCT+W(B,P1)=2 (+c̄ if cross), ... )
//	  on P1: min(B@P1: 2+0, B@P2: 10+3) = 2
//	  on P2: min(B@P1: 2+3,  B@P2: 10+0) = 5
//	via C:
//	  on P1: min(C@P1: 8+0, C@P2: 4+5) = 8
//	  on P2: min(C@P1: 8+5, C@P2: 4+0) = 4
//	OCT(A,P1) = max(2, 8) = 8;  OCT(A,P2) = max(5, 4) = 5
func TestPEFTOCTHandComputed(t *testing.T) {
	pr := tinyFork(t)
	table, err := oct(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Flat row-major layout: OCT(t, p) = table[t*np+p] with np = 2 here.
	if table[2] != 0 || table[3] != 0 || table[4] != 0 || table[5] != 0 {
		t.Fatalf("exit OCT rows must be zero: %v", table[2:])
	}
	if table[0] != 8 || table[1] != 5 {
		t.Fatalf("OCT(A) = %v, want [8 5]", table[:2])
	}
}

// TestCPOPCriticalPathOnPaperExample: |CP| = priority(entry), and the
// published critical path of the Fig. 1 instance (with mean costs) is
// T1 -> T2 -> T9 -> T10.
func TestCPOPCriticalPathOnPaperExample(t *testing.T) {
	pr := workflows.PaperExample()
	up, err := UpwardRank(pr, meanNode(pr))
	if err != nil {
		t.Fatal(err)
	}
	down, err := DownwardRank(pr)
	if err != nil {
		t.Fatal(err)
	}
	entry := pr.G.Entry()
	cpLen := up[entry] + down[entry]
	if math.Abs(cpLen-108) > 0.01 {
		t.Fatalf("|CP| = %g, want 108 (rank_u of the entry)", cpLen)
	}
	// Tasks on the CP satisfy rank_u + rank_d == |CP| (within rounding).
	onCP := []int{}
	for i := range up {
		if math.Abs(up[i]+down[i]-cpLen) < 0.01 {
			onCP = append(onCP, i+1)
		}
	}
	want := []int{1, 2, 9, 10}
	if len(onCP) != len(want) {
		t.Fatalf("CP tasks = %v, want %v", onCP, want)
	}
	for i := range want {
		if onCP[i] != want[i] {
			t.Fatalf("CP tasks = %v, want %v", onCP, want)
		}
	}
}

// TestDLSDynamicLevelHandComputed: on tinyFork after A is placed on P1,
// DL(B, p) = SL(B) − EST(B, p) + (w̄(B) − w(B, p)).
//
//	SL(B) = mean(B) = 6 (no successors, comm ignored in SL)
//	A on P1 finishes at 4.
//	B on P1: EST = 4 (local), Δ = 6−2 = 4  -> DL = 6 − 4 + 4 = 6
//	B on P2: EST = 4+3 = 7, Δ = 6−10 = −4  -> DL = 6 − 7 − 4 = −5
func TestDLSDynamicLevelHandComputed(t *testing.T) {
	pr := tinyFork(t)
	g := pr.G
	sl, err := g.DownwardDistance(meanNode(pr), dag.ZeroEdges)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.NewSchedule(pr)
	if err := s.Place(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	for p, want := range map[platform.Proc]float64{0: 6, 1: -5} {
		e, err := s.Estimate(1, p, sched.Policy{})
		if err != nil {
			t.Fatal(err)
		}
		dl := sl[1] - e.EST + (pr.W.Mean(1) - pr.Exec(1, p))
		if math.Abs(dl-want) > 1e-9 {
			t.Errorf("DL(B, P%d) = %g, want %g", p+1, dl, want)
		}
	}
}
