package heuristics

import (
	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// SDBATS is the Standard Deviation Based Task Scheduling algorithm (Munir
// et al. 2013). It computes upward ranks with each task weighted by the
// standard deviation of its execution times across processors (rather than
// the mean, as in HEFT), schedules in rank order with insertion-based
// minimum EFT, and duplicates the entry task onto every processor up front
// so each processor can consume entry output locally.
//
// With unconditional entry duplication this reproduces the makespan of 74
// the paper reports for SDBATS on the Fig. 1 example (worked by hand; see
// EXPERIMENTS.md).
type SDBATS struct {
	// Pol is the placement policy; canonical SDBATS uses insertion.
	Pol sched.Policy
}

// NewSDBATS returns the canonical (insertion-based) SDBATS scheduler.
func NewSDBATS() *SDBATS { return &SDBATS{Pol: sched.InsertionPolicy} }

// Name implements sched.Algorithm.
func (*SDBATS) Name() string { return "SDBATS" }

// Schedule implements sched.Algorithm.
func (sd *SDBATS) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("SDBATS")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	var order []dag.TaskID
	var err error
	prof.Do(obs.PhaseRank, func() {
		var rank []float64
		rank, err = UpwardRank(pr, sigmaNode(pr))
		if err != nil {
			return
		}
		order, err = orderByRankDesc(pr.G, rank)
	})
	if err != nil {
		return nil, err
	}

	s := sched.NewSchedule(pr)
	entry := pr.G.Entry()
	for _, t := range order {
		best, err := s.BestEFT(t, sd.Pol)
		if err != nil {
			return nil, err
		}
		if err := s.Commit(best); err != nil {
			return nil, err
		}
		if t == entry && !pr.G.Task(entry).Pseudo {
			// Duplicate the freshly placed entry task on every other
			// processor, starting at time 0.
			for p := 0; p < pr.NumProcs(); p++ {
				proc := platform.Proc(p)
				if proc == best.Proc {
					continue
				}
				if err := s.PlaceDuplicate(entry, proc, 0); err != nil {
					return nil, err
				}
			}
		}
	}
	return s, nil
}
