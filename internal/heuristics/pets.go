package heuristics

import (
	"math"
	"sort"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/sched"
)

// PETS is the Performance Effective Task Scheduling algorithm (Ilavarasan,
// Thambidurai, Mahilmannan 2005). Tasks are grouped into precedence levels;
// within a level each task's rank is
//
//	rank(t) = round( ACC(t) + DTC(t) + RPT(t) )
//
// where ACC is the average computation cost (Eq. 1), DTC the total outgoing
// communication cost (data transfer cost), and RPT the highest rank among
// the task's immediate predecessors (data receiving path). Levels are
// processed in order, tasks within a level by descending rank, each mapped
// to its minimum insertion-based EFT processor. Complexity
// O((V+E)(P+log V)).
type PETS struct {
	// Pol is the placement policy; canonical PETS uses insertion.
	Pol sched.Policy
}

// NewPETS returns the canonical (insertion-based) PETS scheduler.
func NewPETS() *PETS { return &PETS{Pol: sched.InsertionPolicy} }

// Name implements sched.Algorithm.
func (*PETS) Name() string { return "PETS" }

// Schedule implements sched.Algorithm.
func (p *PETS) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("PETS")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	g := pr.G
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}

	rank := make([]float64, g.NumTasks())
	order := make([]dag.TaskID, 0, g.NumTasks())
	stopRank := prof.Start(obs.PhaseRank)
	for _, level := range levels {
		for _, t := range level {
			acc := pr.W.Mean(int(t))
			dtc := 0.0
			for _, a := range g.Succs(t) {
				dtc += pr.MeanComm(a.Data)
			}
			rpt := 0.0
			for _, a := range g.Preds(t) {
				if rank[a.Task] > rpt {
					rpt = rank[a.Task]
				}
			}
			rank[t] = math.Round(acc + dtc + rpt)
		}
		sorted := append([]dag.TaskID(nil), level...)
		sort.SliceStable(sorted, func(i, j int) bool {
			if rank[sorted[i]] != rank[sorted[j]] {
				return rank[sorted[i]] > rank[sorted[j]]
			}
			return sorted[i] < sorted[j]
		})
		order = append(order, sorted...)
	}
	stopRank.Stop()
	return scheduleByList(pr, order, p.Pol, prof)
}
