package heuristics

import (
	"testing"

	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// TestPaperExampleMakespans checks every baseline on the Fig. 1 example.
// HEFT = 80 and SDBATS = 74 are hand-verified against the published
// algorithms (and match the values the paper quotes). PETS and PEFT differ
// slightly from the paper's quoted 77/86 — the originals leave tie-breaking
// and comm-averaging details open — so for those we assert the hand-derived
// values of this implementation and record the comparison in
// EXPERIMENTS.md. CPOP has no published value for this example in the
// HDLTS paper; its schedule is validated and its makespan pinned.
func TestPaperExampleMakespans(t *testing.T) {
	pr := workflows.PaperExample()
	for _, tc := range []struct {
		alg  sched.Algorithm
		want float64
	}{
		{NewHEFT(), 80},
		{NewSDBATS(), 74},
	} {
		s, err := tc.alg.Schedule(pr)
		if err != nil {
			t.Fatalf("%s: %v", tc.alg.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: invalid schedule: %v", tc.alg.Name(), err)
		}
		if got := s.Makespan(); got != tc.want {
			t.Errorf("%s makespan = %g, want %g", tc.alg.Name(), got, tc.want)
		}
	}
}

// TestAllBaselinesValidOnExample runs every baseline on the example and
// checks schedule feasibility and sane makespans (>= the critical-path
// lower bound).
func TestAllBaselinesValidOnExample(t *testing.T) {
	pr := workflows.PaperExample()
	lb, err := pr.CPMinLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []sched.Algorithm{NewHEFT(), NewCPOP(), NewPETS(), NewPEFT(), NewSDBATS()} {
		s, err := alg.Schedule(pr)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: invalid schedule: %v", alg.Name(), err)
		}
		if mk := s.Makespan(); mk < lb {
			t.Errorf("%s makespan %g below lower bound %g", alg.Name(), mk, lb)
		}
		t.Logf("%s: makespan %g", alg.Name(), s.Makespan())
	}
}
