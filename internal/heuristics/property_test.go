package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/gen"
	"hdlts/internal/sched"
)

// randomProblem draws a small random problem across the Table II ranges,
// including multi-entry graphs, for property testing.
func randomProblem(rng *rand.Rand) (*sched.Problem, error) {
	p := gen.Params{
		V:          1 + rng.Intn(80),
		Alpha:      []float64{0.5, 1.0, 1.5, 2.0, 2.5}[rng.Intn(5)],
		Density:    1 + rng.Intn(5),
		CCR:        float64(1 + rng.Intn(5)),
		Procs:      2 + 2*rng.Intn(5),
		WDAG:       50 + float64(10*rng.Intn(6)),
		Beta:       []float64{0.4, 0.8, 1.2, 1.6, 2.0}[rng.Intn(5)],
		MultiEntry: rng.Intn(2) == 0,
	}
	return gen.Random(p, rng)
}

// TestQuickAllAlgorithmsProduceValidSchedules is the central property test:
// for arbitrary random problems every algorithm (canonical and avail-based
// variants) must produce a complete, feasible schedule whose makespan is at
// least the critical-path lower bound.
func TestQuickAllAlgorithmsProduceValidSchedules(t *testing.T) {
	avail := sched.Policy{}
	algs := []sched.Algorithm{
		NewHEFT(), NewCPOP(), NewPETS(), NewPEFT(), NewSDBATS(),
		&HEFT{Pol: avail}, &PETS{Pol: avail}, &CPOP{Pol: avail},
		&PEFT{Pol: avail}, &SDBATS{Pol: avail},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := randomProblem(rng)
		if err != nil {
			t.Logf("generator failed: %v", err)
			return false
		}
		lb, err := pr.CPMinLowerBound()
		if err != nil {
			t.Logf("lower bound failed: %v", err)
			return false
		}
		for _, alg := range algs {
			s, err := alg.Schedule(pr)
			if err != nil {
				t.Logf("%s: %v", alg.Name(), err)
				return false
			}
			if err := s.Validate(); err != nil {
				t.Logf("%s: invalid schedule: %v", alg.Name(), err)
				return false
			}
			if s.Makespan() < lb-1e-6 {
				t.Logf("%s: makespan %g below bound %g", alg.Name(), s.Makespan(), lb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertionNeverWorsensHEFT: with identical priorities, the
// insertion policy can only improve (or match) the avail-based policy's
// makespan for list scheduling with a fixed order.
//
// Note: this holds for HEFT because the task order is fixed a priori and the
// insertion policy dominates avail-based placement slot-wise for each
// placement decision made greedily; we assert the aggregate statistically
// rather than per-instance (greedy EFT choices can occasionally interact
// badly), tolerating up to 5% adverse instances.
func TestQuickInsertionNeverWorsensHEFT(t *testing.T) {
	worse, total := 0, 0
	rng := rand.New(rand.NewSource(12345))
	for i := 0; i < 150; i++ {
		pr, err := randomProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		ins, err := NewHEFT().Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		av, err := (&HEFT{}).Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if ins.Makespan() > av.Makespan()+1e-9 {
			worse++
		}
	}
	if worse > total/20 {
		t.Fatalf("insertion worsened HEFT on %d/%d instances", worse, total)
	}
}

func TestSDBATSDuplicatesOnAllProcs(t *testing.T) {
	pr, err := randomProblem(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSDBATS().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	// SDBATS duplicates the entry on every processor except the one hosting
	// the primary copy — unless the entry is a pseudo task (multi-entry
	// graphs), in which case there are no duplicates.
	entry := s.Problem().G.Entry()
	if s.Problem().G.Task(entry).Pseudo {
		if s.NumDuplicates() != 0 {
			t.Fatalf("pseudo entry duplicated %d times", s.NumDuplicates())
		}
		return
	}
	if want := s.Problem().NumProcs() - 1; s.NumDuplicates() != want {
		t.Fatalf("duplicates = %d, want %d", s.NumDuplicates(), want)
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[sched.Algorithm]string{
		NewHEFT():   "HEFT",
		NewCPOP():   "CPOP",
		NewPETS():   "PETS",
		NewPEFT():   "PEFT",
		NewSDBATS(): "SDBATS",
	}
	for alg, name := range want {
		if alg.Name() != name {
			t.Errorf("Name = %q, want %q", alg.Name(), name)
		}
	}
}

func TestSingleProcessorDegenerate(t *testing.T) {
	// With one processor every algorithm serialises all tasks; makespans
	// must equal the total work.
	rng := rand.New(rand.NewSource(5))
	pr, err := gen.Random(gen.Params{V: 30, Alpha: 1, Density: 2, CCR: 3, Procs: 1, WDAG: 50, Beta: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := pr.SeqTimeOnBestProc()
	for _, alg := range []sched.Algorithm{NewHEFT(), NewCPOP(), NewPETS(), NewPEFT(), NewSDBATS()} {
		s, err := alg.Schedule(pr)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if got := s.Makespan(); got < total-1e-6 {
			t.Errorf("%s: makespan %g below serial total %g", alg.Name(), got, total)
		}
	}
}
