package heuristics

import (
	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/sched"
)

// HEFT is the Heterogeneous Earliest Finish Time algorithm (Topcuoglu,
// Hariri, Wu 2002). Tasks are prioritised by upward rank computed over mean
// computation and communication costs, then mapped in rank order to the
// processor minimising the insertion-based earliest finish time. Complexity
// O(V² · P). On the paper's Fig. 1 example HEFT yields makespan 80.
type HEFT struct {
	// Pol is the placement policy; canonical HEFT uses insertion. The
	// avail-based variant exists for the uniform-placement ablation
	// (DESIGN.md §4).
	Pol sched.Policy
}

// NewHEFT returns the canonical (insertion-based) HEFT scheduler.
func NewHEFT() *HEFT { return &HEFT{Pol: sched.InsertionPolicy} }

// Name implements sched.Algorithm.
func (*HEFT) Name() string { return "HEFT" }

// Schedule implements sched.Algorithm.
func (h *HEFT) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("HEFT")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	var order []dag.TaskID
	var err error
	prof.Do(obs.PhaseRank, func() {
		var rank []float64
		rank, err = UpwardRank(pr, meanNode(pr))
		if err != nil {
			return
		}
		order, err = orderByRankDesc(pr.G, rank)
	})
	if err != nil {
		return nil, err
	}
	return scheduleByList(pr, order, h.Pol, prof)
}
