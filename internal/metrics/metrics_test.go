package metrics

import (
	"math"
	"testing"

	"hdlts/internal/core"
	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

func TestMetricsOnPaperExample(t *testing.T) {
	pr := workflows.PaperExample()
	s, err := core.New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate("HDLTS", s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 73 {
		t.Fatalf("makespan = %g, want 73", res.Makespan)
	}
	// Sequential time on the best single processor:
	// P1 127, P2 130, P3 143 -> min 127. Speedup = 127/73.
	if want := 127.0 / 73.0; math.Abs(res.Speedup-want) > 1e-9 {
		t.Errorf("speedup = %g, want %g", res.Speedup, want)
	}
	if want := 127.0 / 73.0 / 3.0; math.Abs(res.Efficiency-want) > 1e-9 {
		t.Errorf("efficiency = %g, want %g", res.Efficiency, want)
	}
	if res.SLR < 1 {
		t.Errorf("SLR = %g < 1: lower bound broken", res.SLR)
	}
	if res.Duplicates != 2 {
		t.Errorf("duplicates = %d, want 2", res.Duplicates)
	}
	if res.Algorithm != "HDLTS" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
}

func TestSLRLowerBoundPath(t *testing.T) {
	// Chain a->b with min costs 2 and 3: LB = 5; makespan 10 -> SLR 2.
	g := dag.New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 1)
	w := platform.MustCostsFromRows([][]float64{{2, 4}, {3, 6}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w)
	slr, err := SLR(pr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if slr != 2 {
		t.Fatalf("SLR = %g, want 2", slr)
	}
}

func TestSLRDegenerate(t *testing.T) {
	g := dag.New(1)
	g.AddTask("a")
	w := platform.MustCostsFromRows([][]float64{{0, 0}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w)
	if _, err := SLR(pr, 5); err == nil {
		t.Fatal("zero lower bound accepted")
	}
}

func TestSpeedupAndEfficiencyErrors(t *testing.T) {
	pr := workflows.PaperExample()
	if _, err := Speedup(pr, 0); err == nil {
		t.Error("zero makespan accepted")
	}
	if _, err := Efficiency(pr, -1); err == nil {
		t.Error("negative makespan accepted")
	}
}

func TestRPD(t *testing.T) {
	got, err := RPD([]float64{80, 73, 86})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100 * 7 / 73.0, 0, 100 * 13 / 73.0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("RPD = %v, want %v", got, want)
		}
	}
	if _, err := RPD(nil); err == nil {
		t.Error("empty RPD accepted")
	}
	if _, err := RPD([]float64{5, 0}); err == nil {
		t.Error("zero makespan accepted")
	}
}

func TestEfficiencyMatchesSpeedupOverProcs(t *testing.T) {
	pr := workflows.PaperExample()
	sp, err := Speedup(pr, 73)
	if err != nil {
		t.Fatal(err)
	}
	eff, err := Efficiency(pr, 73)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff-sp/3) > 1e-12 {
		t.Fatalf("efficiency %g != speedup/procs %g", eff, sp/3)
	}
}
