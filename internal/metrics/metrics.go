// Package metrics implements the paper's three comparison metrics
// (Section V-A): Scheduling Length Ratio, Speedup, and Efficiency.
package metrics

import (
	"fmt"

	"hdlts/internal/sched"
)

// Result bundles the metrics of one schedule against its problem.
type Result struct {
	Algorithm  string
	Makespan   float64
	SLR        float64
	Speedup    float64
	Efficiency float64
	Duplicates int
}

// SLR returns the Scheduling Length Ratio (Eq. 10): makespan divided by the
// sum of minimum execution times along the minimum-cost critical path. An
// SLR of 1 means the schedule matches the absolute lower bound; larger is
// worse. An error is returned for degenerate problems whose lower bound is
// zero (e.g. all-zero cost matrices).
func SLR(pr *sched.Problem, makespan float64) (float64, error) {
	lb, err := pr.CPMinLowerBound()
	if err != nil {
		return 0, err
	}
	if lb <= 0 {
		return 0, fmt.Errorf("metrics: critical-path lower bound is %g; SLR undefined", lb)
	}
	return makespan / lb, nil
}

// Speedup returns Eq. 11: the best single-processor sequential execution
// time of the whole workflow divided by the parallel makespan.
func Speedup(pr *sched.Problem, makespan float64) (float64, error) {
	if makespan <= 0 {
		return 0, fmt.Errorf("metrics: non-positive makespan %g", makespan)
	}
	return pr.SeqTimeOnBestProc() / makespan, nil
}

// Efficiency returns Eq. 12: Speedup divided by the number of processors.
func Efficiency(pr *sched.Problem, makespan float64) (float64, error) {
	sp, err := Speedup(pr, makespan)
	if err != nil {
		return 0, err
	}
	return sp / float64(pr.NumProcs()), nil
}

// RPD returns the Relative Percentage Deviation of each makespan from the
// best (smallest) one in the slice: 100·(m−best)/best. The winner scores 0.
// This is the standard cross-algorithm comparison when several schedulers
// run on the *same* instance (complementing SLR, which compares against an
// absolute bound). An error is returned for empty input or non-positive
// makespans.
func RPD(makespans []float64) ([]float64, error) {
	if len(makespans) == 0 {
		return nil, fmt.Errorf("metrics: RPD of nothing")
	}
	best := makespans[0]
	for _, m := range makespans {
		if m <= 0 {
			return nil, fmt.Errorf("metrics: non-positive makespan %g", m)
		}
		if m < best {
			best = m
		}
	}
	out := make([]float64, len(makespans))
	for i, m := range makespans {
		out[i] = 100 * (m - best) / best
	}
	return out, nil
}

// Evaluate computes every metric for a completed schedule. The schedule's
// own (possibly normalised) problem is used, so pseudo tasks contribute
// zero cost to bounds and sums, keeping metrics identical to the original
// workflow's.
func Evaluate(algorithm string, s *sched.Schedule) (Result, error) {
	pr := s.Problem()
	mk := s.Makespan()
	slr, err := SLR(pr, mk)
	if err != nil {
		return Result{}, err
	}
	sp, err := Speedup(pr, mk)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Algorithm:  algorithm,
		Makespan:   mk,
		SLR:        slr,
		Speedup:    sp,
		Efficiency: sp / float64(pr.NumProcs()),
		Duplicates: s.NumDuplicates(),
	}, nil
}
