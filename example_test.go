package hdlts_test

import (
	"fmt"
	"math/rand"
	"os"

	"hdlts"
)

// The godoc examples below double as executable documentation: each runs in
// the test suite and its Output comment is verified.

// ExampleNewHDLTS schedules the paper's worked example and reproduces the
// published makespan of 73.
func ExampleNewHDLTS() {
	pr := hdlts.PaperExample()
	s, err := hdlts.NewHDLTS().Schedule(pr)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Makespan())
	// Output: 73
}

// ExampleNewHDLTSWithOptions runs the solve API's ablation knobs: turning
// entry-task duplication off costs the Fig. 1 instance five time units,
// while the σ-definition and CPU-selection variants happen to agree with
// the canonical configuration on this graph. MaxWorkers caps the threads
// the solver may use on wide instances; 1 forces a serial solve. Every
// variant is bit-reproducible — the options select a deterministic
// algorithm, never a heuristic budget.
func ExampleNewHDLTSWithOptions() {
	pr := hdlts.PaperExample()
	for _, o := range []hdlts.HDLTSOptions{
		{},                         // the paper's configuration
		{DisableDuplication: true}, // ablation: no entry-task duplication
		{Insertion: true},          // insertion-based CPU selection
		{PopulationSigma: true},    // PV via population σ (n denominator)
		{MaxWorkers: 1},            // serial solve, same schedule
	} {
		alg := hdlts.NewHDLTSWithOptions(o)
		s, err := alg.Schedule(pr)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s %g\n", alg.Name(), s.Makespan())
	}
	// Output:
	// HDLTS 73
	// HDLTS-nodup 78
	// HDLTS-ins 73
	// HDLTS-popσ 73
	// HDLTS 73
}

// ExampleScheduleWithTrace replays Table I's first two decisions.
func ExampleScheduleWithTrace() {
	_, steps, err := hdlts.ScheduleWithTrace(hdlts.PaperExample())
	if err != nil {
		panic(err)
	}
	for _, st := range steps[:2] {
		fmt.Printf("T%d -> P%d (EFT %g)\n", st.Selected+1, st.Proc+1, st.EFT[st.Proc])
	}
	// Output:
	// T1 -> P3 (EFT 9)
	// T6 -> P3 (EFT 18)
}

// ExampleAlgorithms compares every algorithm of the paper on one instance.
func ExampleAlgorithms() {
	pr := hdlts.PaperExample()
	for _, alg := range hdlts.Algorithms() {
		s, err := alg.Schedule(pr)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s %g\n", alg.Name(), s.Makespan())
	}
	// Output:
	// HDLTS 73
	// HEFT 80
	// PETS 76
	// CPOP 86
	// PEFT 85
	// SDBATS 74
}

// ExampleNewProblem builds a problem by hand and evaluates the metrics.
func ExampleNewProblem() {
	g := hdlts.NewGraph(2)
	a := g.AddTask("produce")
	b := g.AddTask("consume")
	if err := g.AddEdge(a, b, 6); err != nil {
		panic(err)
	}
	w, _ := hdlts.CostsFromRows([][]float64{{4, 8}, {5, 2}})
	pl, _ := hdlts.NewUniformPlatform(2)
	pr, err := hdlts.NewProblem(g, pl, w)
	if err != nil {
		panic(err)
	}
	s, _ := hdlts.NewHDLTS().Schedule(pr)
	slr, _ := hdlts.SLR(pr, s.Makespan())
	fmt.Printf("makespan %g, SLR %.2f\n", s.Makespan(), slr)
	// Output: makespan 9, SLR 1.50
}

// ExampleRandomProblem generates a Table II synthetic workload.
func ExampleRandomProblem() {
	rng := rand.New(rand.NewSource(1))
	pr, err := hdlts.RandomProblem(hdlts.GenParams{
		V: 50, Alpha: 1.0, Density: 3, CCR: 2, Procs: 4, WDAG: 80, Beta: 1.2,
	}, rng)
	if err != nil {
		panic(err)
	}
	fmt.Println(pr.NumTasks(), pr.NumProcs())
	// Output: 50 4
}

// ExampleFFTGraph shows the workflow structures and their published sizes.
func ExampleFFTGraph() {
	fft, _ := hdlts.FFTGraph(32)
	mon, _ := hdlts.MontageGraph(50)
	gauss, _ := hdlts.GaussianGraph(5)
	fmt.Println(fft.NumTasks(), mon.NumTasks(), hdlts.MolDynGraph().NumTasks(), gauss.NumTasks())
	// Output: 223 50 41 14
}

// ExampleWriteGanttSVG renders a schedule to SVG (here just measuring it).
func ExampleWriteGanttSVG() {
	s, _ := hdlts.NewHDLTS().Schedule(hdlts.PaperExample())
	f, err := os.CreateTemp("", "gantt-*.svg")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	if err := hdlts.WriteGanttSVG(f, s, "HDLTS on Fig. 1"); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	info, _ := os.Stat(f.Name())
	fmt.Println(info.Size() > 1000)
	// Output: true
}

// ExampleCompareUnderUncertainty runs the online-execution extension.
func ExampleCompareUnderUncertainty() {
	rng := rand.New(rand.NewSource(1))
	pr := hdlts.PaperExample()
	sums, err := hdlts.CompareUnderUncertainty(pr,
		hdlts.Uncertainty{ExecJitter: 0.2, CommJitter: 0.2}, nil, 10, rng)
	if err != nil {
		panic(err)
	}
	for _, s := range sums {
		fmt.Println(s.Policy, s.Makespan.N())
	}
	// Output:
	// HDLTS-online 10
	// HDLTS-static 10
	// HEFT-static 10
	// HEFT-order 10
}
