package hdlts_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hdlts"
)

func TestPublicAPIOnlineExecution(t *testing.T) {
	pr := hdlts.PaperExample()
	rng := rand.New(rand.NewSource(1))
	r, err := hdlts.NewReality(pr, hdlts.Uncertainty{ExecJitter: 0.2, CommJitter: 0.2}, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hdlts.ExecuteOnline(r, hdlts.OnlineHDLTSPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %g", res.Makespan)
	}

	plan, err := hdlts.GetAlgorithm("heft")
	if err != nil {
		t.Fatal(err)
	}
	s, err := plan.Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []hdlts.OnlinePolicy{
		hdlts.StaticMappingPolicy("HEFT", s),
		hdlts.StaticOrderPolicy("HEFT", s),
	} {
		if _, err := hdlts.ExecuteOnline(r, pol); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}

	sums, err := hdlts.CompareUnderUncertainty(pr, hdlts.Uncertainty{ExecJitter: 0.3}, []hdlts.Failure{{Proc: 0, At: 30}}, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("summaries = %d", len(sums))
	}
}

func TestPublicAPIExtendedAndAnalysis(t *testing.T) {
	if len(hdlts.ExtendedAlgorithms()) != 13 {
		t.Fatal("extended pool incomplete")
	}
	g, err := hdlts.GaussianGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 14 {
		t.Fatalf("Gaussian tasks = %d, want 14", g.NumTasks())
	}

	pr := hdlts.PaperExample()
	s, err := hdlts.NewHDLTS().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 73 || a.Duplicates != 2 {
		t.Fatalf("analysis = %+v", a)
	}

	var buf bytes.Buffer
	if err := hdlts.WriteGanttSVG(&buf, s, "demo"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("SVG output malformed")
	}
}
