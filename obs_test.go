package hdlts_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"hdlts"
)

// traceOnce schedules one seeded 200-task problem with every algorithm,
// streaming all events into one JSONL buffer via the public API.
func traceOnce(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	pr, err := hdlts.RandomProblem(hdlts.GenParams{V: 200, Alpha: 1.5, Density: 3, CCR: 2, Procs: 6, WDAG: 80, Beta: 1.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := hdlts.NewJSONLTracer(&buf)
	for _, alg := range hdlts.Algorithms() {
		prA := pr.WithTracer(hdlts.NamedTracer(sink, alg.Name()))
		if _, err := alg.Schedule(prA); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJSONLStreamDeterministic is the issue's determinism satellite: the
// same seeded problem traced twice must produce byte-identical JSONL
// streams — events carry sequence numbers, never wall-clock timestamps,
// unless WallClock is opted into.
func TestJSONLStreamDeterministic(t *testing.T) {
	a := traceOnce(t)
	b := traceOnce(t)
	if !bytes.Equal(a, b) {
		al := strings.Split(string(a), "\n")
		bl := strings.Split(string(b), "\n")
		for i := range al {
			if i >= len(bl) || al[i] != bl[i] {
				t.Fatalf("JSONL streams diverge at line %d:\n%s\n%s", i+1, al[i], bl[i])
			}
		}
		t.Fatalf("JSONL streams differ in length: %d vs %d bytes", len(a), len(b))
	}
	if !json.Valid([]byte(strings.SplitN(string(a), "\n", 2)[0])) {
		t.Fatal("first event line is not valid JSON")
	}
	if strings.Contains(string(a), `"wall_ns"`) {
		t.Fatal("deterministic stream contains wall-clock timestamps")
	}
}

// TestPublicAPIObservability exercises every re-exported observability
// entry point end to end on the Fig. 1 example.
func TestPublicAPIObservability(t *testing.T) {
	pr := hdlts.PaperExample()

	col := hdlts.NewEventCollector()
	chrome := hdlts.NewChromeTracer()
	var jsonlBuf bytes.Buffer
	jsonl := hdlts.NewJSONLTracer(&jsonlBuf)
	multi := hdlts.MultiTracer(col, chrome, jsonl, hdlts.NopTracer)

	alg := hdlts.NewHDLTS()
	s, err := alg.Schedule(pr.WithTracer(hdlts.NamedTracer(multi, "HDLTS")))
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 73 {
		t.Fatalf("makespan = %g, want 73", s.Makespan())
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}

	if col.Len() == 0 {
		t.Fatal("collector saw no events")
	}
	var commits int
	for _, ev := range col.Events() {
		if ev.Alg != "HDLTS" {
			t.Fatalf("unstamped event: %+v", ev)
		}
		if ev.Type.String() == "commit" {
			commits++
		}
	}
	if want := pr.NumTasks() + s.NumDuplicates(); commits != want {
		t.Fatalf("commit events = %d, want %d", commits, want)
	}

	var chromeBuf bytes.Buffer
	if err := chrome.WriteJSON(&chromeBuf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(chromeBuf.Bytes()) || !strings.Contains(chromeBuf.String(), "traceEvents") {
		t.Fatalf("chrome trace malformed:\n%s", chromeBuf.String())
	}

	var promBuf bytes.Buffer
	if err := hdlts.DefaultStats().WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(promBuf.String(), "hdlts_sched_commits_total") {
		t.Fatalf("stats exposition missing scheduler counters:\n%s", promBuf.String())
	}
}
