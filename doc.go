// Package hdlts is a complete, self-contained reproduction of
//
//	Qasim, Iqbal, Munir, Tziritas, Khan, Yang —
//	"Dynamic Mapping of Application Workflows in Heterogeneous Computing
//	Environments" (IPPS 2017)
//
// It provides:
//
//   - the HDLTS scheduler (the paper's contribution): a dynamic
//     list-scheduling heuristic that prioritises ready tasks by the standard
//     deviation of their earliest finish times across processors and
//     duplicates the entry task only where duplication provably shortens a
//     child's start — served by an allocation-free indexed core that
//     schedules 10⁴-task workflows in ~16 ms and 10⁶-task workflows in
//     seconds, proven byte-identical to the paper's literal loop
//     (docs/SOLVER.md);
//   - the five published baselines it is compared against — HEFT, CPOP,
//     PETS, PEFT, and SDBATS — implemented per their original papers on one
//     shared scheduling substrate;
//   - the synthetic task-graph generator of Table II, the FFT / Montage /
//     Molecular-Dynamics real-world workflow structures, the paper's SLR /
//     speedup / efficiency metrics, and the experiment harness that
//     regenerates every figure of the evaluation section;
//   - an observability layer (Tracer, Stats) streaming structured decision
//     events and runtime metrics from every scheduler (docs/OBSERVABILITY.md),
//     and a scheduler-as-a-service HTTP handler (NewService, served by
//     cmd/hdltsd) that maps problems to schedules over JSON
//     (docs/SERVICE.md).
//
// # Quick start
//
//	pr := hdlts.PaperExample()              // Fig. 1: 10 tasks, 3 CPUs
//	s, err := hdlts.NewHDLTS().Schedule(pr) // makespan 73 (Table I)
//	if err != nil { ... }
//	fmt.Println(s.Makespan())
//	res, _ := hdlts.Evaluate("HDLTS", s)    // SLR, speedup, efficiency
//
// Random problems come from the Table II generator:
//
//	rng := rand.New(rand.NewSource(1))
//	pr, err := hdlts.RandomProblem(hdlts.GenParams{
//	    V: 200, Alpha: 1.0, Density: 3, CCR: 2.0, Procs: 4, WDAG: 80, Beta: 1.2,
//	}, rng)
//
// See the examples/ directory for runnable programs and cmd/experiments for
// the full figure-regeneration harness.
package hdlts
