module hdlts

go 1.22
