// Benchmarks regenerating every table and figure of the paper's evaluation
// section, plus the ablation studies DESIGN.md §4 calls out.
//
// Figure benches run a miniature campaign (a few repetitions per x-point)
// per iteration and additionally report the headline comparison as custom
// metrics: HDLTS's mean SLR or efficiency and the gap to HEFT
// (negative gap = HDLTS better on SLR figures, positive = better on
// efficiency figures). Shapes at paper scale are produced by
// cmd/experiments and recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package hdlts_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hdlts"
	"hdlts/internal/core"
	"hdlts/internal/dynamic"
	"hdlts/internal/experiments"
	"hdlts/internal/gen"
	"hdlts/internal/jobs"
	"hdlts/internal/obs"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
	"hdlts/internal/workflows"
)

// benchReps keeps each figure-bench iteration around a hundred schedules:
// big enough to exercise the full pipeline, small enough to iterate.
const benchReps = 3

// benchFigure runs one experiment campaign per iteration and reports the
// final HDLTS and HEFT means as custom metrics.
func benchFigure(b *testing.B, name string) {
	b.Helper()
	e, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Reps: benchReps, Seed: 1, Algorithms: registry.All()}
	var tbl *experiments.Table
	solve0 := solverPhaseSeconds(cfg.Algorithms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		tbl, err = experiments.Run(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	h := tbl.SeriesByName("HDLTS")
	f := tbl.SeriesByName("HEFT")
	b.ReportMetric(stats.Mean(h.Mean), "hdlts_"+metricUnit(e.Metric))
	b.ReportMetric(stats.Mean(h.Mean)-stats.Mean(f.Mean), "gap_vs_heft")
	// Split the iteration cost into scheduling proper vs. everything else
	// (graph generation, lower bounds, metric evaluation, table assembly),
	// read off the hdlts_solver_phase_seconds schedule-phase histograms.
	if el := b.Elapsed().Seconds(); el > 0 {
		share := (solverPhaseSeconds(cfg.Algorithms) - solve0) / el
		b.ReportMetric(share, "solve_share")
		b.ReportMetric(1-share, "evaluate_share")
	}
}

// solverPhaseSeconds sums the schedule-phase seconds the process-wide
// registry has accumulated for the given algorithms.
func solverPhaseSeconds(algs []sched.Algorithm) float64 {
	total := 0.0
	for _, a := range algs {
		total += obs.Default().Histogram(obs.MetricSolverPhase,
			"alg", a.Name(), "phase", obs.PhaseSchedule.String()).Sum()
	}
	return total
}

func metricUnit(metric string) string {
	if metric == experiments.MetricEfficiency {
		return "eff"
	}
	return "slr"
}

// BenchmarkTableI regenerates the worked-example trace (Table I): the full
// HDLTS run with per-step trace capture on the Fig. 1 instance.
func BenchmarkTableI(b *testing.B) {
	pr := workflows.PaperExample()
	h := core.New()
	for i := 0; i < b.N; i++ {
		s, steps, err := h.ScheduleTrace(pr)
		if err != nil {
			b.Fatal(err)
		}
		if s.Makespan() != 73 || len(steps) != 10 {
			b.Fatalf("trace drifted: makespan %g, %d steps", s.Makespan(), len(steps))
		}
	}
}

// BenchmarkGenerator exercises the Table II random-graph generator at a
// mid-grid parameter point (V=500).
func BenchmarkGenerator(b *testing.B) {
	p := gen.Params{V: 500, Alpha: 1.5, Density: 3, CCR: 3, Procs: 6, WDAG: 80, Beta: 1.2}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := gen.Random(p, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per evaluation figure.

func BenchmarkFig2(b *testing.B)   { benchFigure(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchFigure(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchFigure(b, "fig4") }
func BenchmarkFig6(b *testing.B)   { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchFigure(b, "fig8") }
func BenchmarkFig10a(b *testing.B) { benchFigure(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchFigure(b, "fig10b") }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "fig11") }
func BenchmarkFig13(b *testing.B)  { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchFigure(b, "fig14") }

// benchProblems draws a fixed sample of mid-size problems for the
// per-algorithm and ablation benches.
func benchProblems(b *testing.B, n int) []*sched.Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	prs := make([]*sched.Problem, n)
	for i := range prs {
		pr, err := gen.Random(gen.Params{V: 300, Alpha: 1.5, Density: 3, CCR: 3, Procs: 8, WDAG: 80, Beta: 1.2}, rng)
		if err != nil {
			b.Fatal(err)
		}
		prs[i] = pr
	}
	return prs
}

// benchAlgorithm times one scheduler over a fixed problem sample and
// reports its mean SLR as a custom metric.
func benchAlgorithm(b *testing.B, alg sched.Algorithm) {
	b.Helper()
	prs := benchProblems(b, 8)
	var acc stats.Running
	solve0 := solverPhaseSeconds([]sched.Algorithm{alg})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := prs[i%len(prs)]
		s, err := alg.Schedule(pr)
		if err != nil {
			b.Fatal(err)
		}
		lb, err := pr.CPMinLowerBound()
		if err != nil {
			b.Fatal(err)
		}
		acc.Add(s.Makespan() / lb)
	}
	b.StopTimer()
	b.ReportMetric(acc.Mean(), "mean_slr")
	// Scheduling vs. lower-bound evaluation split for this iteration body.
	if el := b.Elapsed().Seconds(); el > 0 {
		share := (solverPhaseSeconds([]sched.Algorithm{alg}) - solve0) / el
		b.ReportMetric(share, "solve_share")
		b.ReportMetric(1-share, "evaluate_share")
	}
}

// Per-algorithm scheduling throughput on identical 300-task workloads.

func BenchmarkScheduleHDLTS(b *testing.B)  { benchAlgorithm(b, core.New()) }
func BenchmarkScheduleHEFT(b *testing.B)   { benchAlgorithm(b, registry.MustGet("heft")) }
func BenchmarkScheduleCPOP(b *testing.B)   { benchAlgorithm(b, registry.MustGet("cpop")) }
func BenchmarkSchedulePETS(b *testing.B)   { benchAlgorithm(b, registry.MustGet("pets")) }
func BenchmarkSchedulePEFT(b *testing.B)   { benchAlgorithm(b, registry.MustGet("peft")) }
func BenchmarkScheduleSDBATS(b *testing.B) { benchAlgorithm(b, registry.MustGet("sdbats")) }

// Ablation benches (DESIGN.md §4): identical workloads, one design knob
// toggled; mean SLR is the quality metric to compare across variants.

func BenchmarkAblationDuplicationOn(b *testing.B) {
	benchAlgorithm(b, core.New())
}

func BenchmarkAblationDuplicationOff(b *testing.B) {
	benchAlgorithm(b, core.NewWithOptions(core.Options{DisableDuplication: true}))
}

func BenchmarkAblationSigmaSample(b *testing.B) {
	benchAlgorithm(b, core.New())
}

func BenchmarkAblationSigmaPopulation(b *testing.B) {
	benchAlgorithm(b, core.NewWithOptions(core.Options{PopulationSigma: true}))
}

func BenchmarkAblationPlacementAvail(b *testing.B) {
	benchAlgorithm(b, core.New())
}

func BenchmarkAblationPlacementInsertion(b *testing.B) {
	benchAlgorithm(b, core.NewWithOptions(core.Options{Insertion: true}))
}

func BenchmarkAblationLookaheadOff(b *testing.B) {
	benchAlgorithm(b, core.New())
}

func BenchmarkAblationLookaheadOn(b *testing.B) {
	benchAlgorithm(b, core.NewWithOptions(core.Options{Lookahead: true}))
}

// BenchmarkAblationPaperModeHEFT times the avail-based HEFT variant used in
// paper-mode comparisons (fairness check for the published shape).
func BenchmarkAblationPaperModeHEFT(b *testing.B) {
	for _, alg := range registry.PaperMode() {
		if alg.Name() == "HEFT" {
			benchAlgorithm(b, alg)
			return
		}
	}
	b.Fatal("paper-mode HEFT not found")
}

// Extension benches: online execution under uncertainty (the paper's
// future-work scenario). Each iteration executes the full policy panel over
// one reality; mean actual SLR of the online HDLTS policy is reported as a
// custom metric.

func BenchmarkExtUncertain(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pr, err := gen.Random(gen.Params{V: 100, Alpha: 1, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2}, rng)
	if err != nil {
		b.Fatal(err)
	}
	var acc stats.Running
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sums, err := dynamic.Compare(pr, dynamic.Uncertainty{ExecJitter: 0.3, CommJitter: 0.3}, nil, 1, rng)
		if err != nil {
			b.Fatal(err)
		}
		acc.Add(sums[0].SLR.Mean()) // sums[0] is HDLTS-online
	}
	b.StopTimer()
	b.ReportMetric(acc.Mean(), "hdlts_online_slr")
}

func BenchmarkExtFailure(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pr, err := gen.Random(gen.Params{V: 100, Alpha: 1, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2}, rng)
	if err != nil {
		b.Fatal(err)
	}
	fails := []dynamic.Failure{{Proc: 0, At: 150}, {Proc: 1, At: 300}}
	var acc stats.Running
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sums, err := dynamic.Compare(pr, dynamic.Uncertainty{ExecJitter: 0.2, CommJitter: 0.2}, fails, 1, rng)
		if err != nil {
			b.Fatal(err)
		}
		acc.Add(sums[0].SLR.Mean())
	}
	b.StopTimer()
	b.ReportMetric(acc.Mean(), "hdlts_online_slr")
}

// BenchmarkExtraSchedulers times the reference schedulers beyond the
// paper's comparison set on the shared 300-task workload.
func BenchmarkExtraSchedulers(b *testing.B) {
	for _, name := range []string{"dheft", "dls", "dsc", "ga", "mct", "minmin", "maxmin"} {
		name := name
		b.Run(name, func(b *testing.B) { benchAlgorithm(b, registry.MustGet(name)) })
	}
}

// BenchmarkScaling tracks HDLTS runtime growth across the paper's task-size
// axis (Fig. 3's x-axis), one sub-bench per size.
func BenchmarkScaling(b *testing.B) {
	for _, v := range []int{100, 500, 1000, 5000, 10000} {
		v := v
		b.Run(itoa(v), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			pr, err := gen.Random(gen.Params{V: v, Alpha: 1.5, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2}, rng)
			if err != nil {
				b.Fatal(err)
			}
			h := core.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Schedule(pr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Observability-overhead benches: HDLTS on a ~1000-task problem with no
// tracer attached vs. the explicit no-op tracer. The no-op path adds one
// Enabled() call per guarded site and allocates nothing, so the two benches
// should agree within noise (<5%; measured ~1% on the reference container —
// see docs/OBSERVABILITY.md).

func benchObsProblem(b *testing.B) *sched.Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	pr, err := gen.Random(gen.Params{V: 1000, Alpha: 1.5, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return pr
}

func BenchmarkObsOverheadUntraced(b *testing.B) {
	pr := benchObsProblem(b)
	h := core.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Schedule(pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsOverheadNopTracer(b *testing.B) {
	pr := benchObsProblem(b).WithTracer(obs.Nop)
	h := core.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Schedule(pr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverheadCollector bounds the enabled-tracer cost: every
// event materialised into an in-memory collector (reset each iteration).
func BenchmarkObsOverheadCollector(b *testing.B) {
	col := obs.NewCollector()
	pr := benchObsProblem(b).WithTracer(col)
	h := core.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Reset()
		if _, err := h.Schedule(pr); err != nil {
			b.Fatal(err)
		}
	}
}

// Span-overhead benches: the tracing guardrail. The serving path wraps
// every schedule in spans via obs.StartSpan; when the request's trace was
// not retained (no store in the context, or sampled out) StartSpan must
// be free — Disabled vs the plain baseline stays within noise (<5%),
// while Recorded bounds the cost of a fully-retained span tree. All three
// run the Fig. 1 problem so the schedule itself is cheap and the
// instrumentation delta is visible.

func BenchmarkSpanOverheadBaseline(b *testing.B) {
	pr := workflows.PaperExample()
	h := core.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Schedule(pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpanOverheadDisabled(b *testing.B) {
	pr := workflows.PaperExample()
	h := core.New()
	ctx := context.Background() // no store: the nil-span no-op path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sctx, sp := obs.StartSpan(ctx, "schedule.run", "alg", "HDLTS")
		_, solve := obs.StartSpan(sctx, "schedule.solve")
		_, err := h.Schedule(pr)
		solve.Finish()
		sp.Finish()
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpanOverheadRecorded(b *testing.B) {
	pr := workflows.PaperExample()
	h := core.New()
	ts := obs.NewTraceStore(8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := "b-" + itoa(i+1)
		ts.Start(id)
		ctx := obs.WithTraceStore(obs.WithTraceID(context.Background(), id), ts)
		sctx, sp := obs.StartSpan(ctx, "schedule.run", "alg", "HDLTS")
		_, solve := obs.StartSpan(sctx, "schedule.solve")
		_, err := h.Schedule(pr)
		solve.Finish()
		sp.Finish()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompaction measures the post-pass compaction's effect on
// HDLTS's avail-based schedules (insertion-based schedules are usually
// already tight): time includes the compaction, the custom metric is the
// resulting mean SLR for comparison with BenchmarkAblationPlacement*.
func BenchmarkAblationCompaction(b *testing.B) {
	prs := benchProblems(b, 8)
	h := core.New()
	var acc stats.Running
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := prs[i%len(prs)]
		s, err := h.Schedule(pr)
		if err != nil {
			b.Fatal(err)
		}
		c, err := s.Compact()
		if err != nil {
			b.Fatal(err)
		}
		lb, err := pr.CPMinLowerBound()
		if err != nil {
			b.Fatal(err)
		}
		acc.Add(c.Makespan() / lb)
	}
	b.StopTimer()
	b.ReportMetric(acc.Mean(), "mean_slr")
}

// Job-subsystem benches: the content-address hash (CanonicalProblemHash)
// that keys the result cache, and the manager's cache hit/miss submission
// paths over a memory-only store with a trivial run function.

func BenchmarkCanonicalHash(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	large, err := gen.Random(gen.Params{V: 1000, Alpha: 1.5, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2}, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		pr   *sched.Problem
	}{
		{"fig1", workflows.PaperExample()},
		{"v1000", large},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hdlts.CanonicalProblemHash("HDLTS", bc.pr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchJobsManager opens a memory-only manager wired to run and retires
// it after the bench.
func benchJobsManager(b *testing.B, workers int, run jobs.RunFunc) *jobs.Manager {
	b.Helper()
	m, err := jobs.Open(jobs.Config{
		Workers:    workers,
		QueueDepth: 64,
		GCInterval: time.Hour,
		Metrics:    obs.NewRegistry(),
		Run:        run,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.Close(context.Background()) })
	return m
}

// BenchmarkJobCacheHit times a submission answered entirely from the
// result cache: hash lookup plus minting the pre-completed job record.
func BenchmarkJobCacheHit(b *testing.B) {
	m := benchJobsManager(b, 1, func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
		return json.RawMessage(`{"makespan":73}`), nil
	})
	const hash = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
	problem := json.RawMessage(`{"procs":3}`)
	j, err := m.Submit("HDLTS", hash, problem)
	if err != nil {
		b.Fatal(err)
	}
	for {
		got, err := m.Get(j.ID)
		if err != nil {
			b.Fatal(err)
		}
		if got.State == jobs.Done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := m.Submit("HDLTS", hash, problem)
		if err != nil {
			b.Fatal(err)
		}
		if hit.State != jobs.Done || !hit.CacheHit {
			b.Fatalf("expected a cache hit, got state %s", hit.State)
		}
	}
}

// BenchmarkJobCacheMiss times the full miss path per fresh hash: enqueue,
// worker pickup, and run of a trivial function.
func BenchmarkJobCacheMiss(b *testing.B) {
	ran := make(chan struct{}, 1)
	m := benchJobsManager(b, 1, func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
		ran <- struct{}{}
		return json.RawMessage(`{"makespan":73}`), nil
	})
	problem := json.RawMessage(`{"procs":3}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hash := fmt.Sprintf("%064x", i)
		if _, err := m.Submit("HDLTS", hash, problem); err != nil {
			b.Fatal(err)
		}
		<-ran
	}
}
