package hdlts_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"hdlts"
)

// TestServiceEmbedding mounts the scheduling service inside a user-owned
// mux — the embedding story docs/SERVICE.md documents — and schedules the
// Fig. 1 problem through it.
func TestServiceEmbedding(t *testing.T) {
	svc, err := hdlts.NewService(hdlts.ServiceConfig{Metrics: hdlts.DefaultStats()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())

	mux := http.NewServeMux()
	mux.Handle("/sched/", http.StripPrefix("/sched", svc))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var problem bytes.Buffer
	if err := hdlts.PaperExample().WriteJSON(&problem); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(hdlts.ScheduleRequest{Algorithm: "hdlts", Problem: problem.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/sched/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out hdlts.ScheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Makespan != 73 {
		t.Errorf("makespan = %g, want 73", out.Makespan)
	}

	// A custom algorithm can be served by overriding Lookup.
	custom, err := hdlts.NewService(hdlts.ServiceConfig{
		Metrics: hdlts.DefaultStats(),
		Lookup: func(name string) (hdlts.Algorithm, error) {
			return hdlts.GetAlgorithm("heft")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer custom.Shutdown(context.Background())
	rec := httptest.NewRecorder()
	custom.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("custom lookup status = %d: %s", rec.Code, rec.Body)
	}
	var out2 hdlts.ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Algorithm != "HEFT" || out2.Makespan != 80 {
		t.Errorf("custom lookup got %s/%g, want HEFT/80", out2.Algorithm, out2.Makespan)
	}
}
