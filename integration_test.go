package hdlts_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hdlts"
	"hdlts/internal/sched"
)

// TestFullPipeline drives the complete product path end to end, the way the
// CLI tools compose it: generate a workload, serialise and reload the
// problem, schedule it with every registered algorithm, validate, export
// and reload each schedule, analyse it, and render both Gantt formats.
func TestFullPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	g, err := hdlts.FFTGraph(8)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := hdlts.AssignCosts(g, hdlts.CostParams{Procs: 4, WDAG: 70, Beta: 1.2, CCR: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Problem JSON round trip.
	var pbuf bytes.Buffer
	if err := pr.WriteJSON(&pbuf); err != nil {
		t.Fatal(err)
	}
	pr2, err := sched.ReadProblemJSON(&pbuf)
	if err != nil {
		t.Fatal(err)
	}
	if pr2.NumTasks() != pr.NumTasks() {
		t.Fatal("problem changed across serialisation")
	}

	for _, alg := range hdlts.ExtendedAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			s, err := alg.Schedule(pr2)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("invalid schedule: %v", err)
			}

			// Schedule JSON round trip against the algorithm's own
			// (normalised) problem.
			var sbuf bytes.Buffer
			if err := s.WriteScheduleJSON(&sbuf, alg.Name()); err != nil {
				t.Fatal(err)
			}
			back, name, err := sched.ReadScheduleJSON(s.Problem(), &sbuf)
			if err != nil {
				t.Fatal(err)
			}
			if name != alg.Name() || back.Makespan() != s.Makespan() {
				t.Fatalf("schedule round trip drifted: %s %g vs %s %g",
					name, back.Makespan(), alg.Name(), s.Makespan())
			}

			// Analysis and rendering.
			a, err := s.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			if a.MeanUtilization <= 0 || a.MeanUtilization > 1 {
				t.Fatalf("utilisation %g out of range", a.MeanUtilization)
			}
			var text, svg bytes.Buffer
			if err := s.WriteGantt(&text, 60); err != nil {
				t.Fatal(err)
			}
			if err := hdlts.WriteGanttSVG(&svg, s, alg.Name()); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(text.String(), "makespan") || !strings.Contains(svg.String(), "</svg>") {
				t.Fatal("render output malformed")
			}

			// Metrics are mutually consistent.
			res, err := hdlts.Evaluate(alg.Name(), s)
			if err != nil {
				t.Fatal(err)
			}
			if res.SLR < 1 || res.Speedup <= 0 || res.Efficiency <= 0 {
				t.Fatalf("implausible metrics: %+v", res)
			}
		})
	}
}

// TestFullPipelineOnlineExtension extends the pipeline through the online
// executor: plan offline, execute under jitter and one failure, and check
// causal consistency via the executor's own error paths plus a spot makespan
// sanity bound.
func TestFullPipelineOnlineExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pr, err := hdlts.RandomProblem(hdlts.GenParams{
		V: 80, Alpha: 1, Density: 3, CCR: 2, Procs: 6, WDAG: 60, Beta: 1.2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := pr.Normalize()
	r, err := hdlts.NewReality(base, hdlts.Uncertainty{ExecJitter: 0.25, CommJitter: 0.25},
		[]hdlts.Failure{{Proc: 3, At: 100}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := hdlts.NewHDLTS().Schedule(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []hdlts.OnlinePolicy{
		hdlts.OnlineHDLTSPolicy(),
		hdlts.StaticMappingPolicy("HDLTS", plan),
		hdlts.StaticOrderPolicy("HDLTS", plan),
	} {
		res, err := hdlts.ExecuteOnline(r, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		// Realised costs are within ±25% of estimates, so the actual
		// makespan cannot beat 75% of the lower bound.
		lb, err := base.CPMinLowerBound()
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < 0.75*lb {
			t.Fatalf("%s: makespan %g below jittered bound %g", pol.Name(), res.Makespan, 0.75*lb)
		}
	}
}
