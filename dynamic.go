package hdlts

import (
	"io"
	"math/rand"

	"hdlts/internal/dynamic"
	"hdlts/internal/viz"
)

// Online execution under uncertainty (the paper's future-work scenario,
// Section VI): run a workflow with realised costs that deviate from the
// planning estimates, optionally with processor failures, and compare the
// dynamic HDLTS policy against static deployments of offline plans.

type (
	// Uncertainty configures multiplicative run-time jitter on execution
	// and communication times.
	Uncertainty = dynamic.Uncertainty
	// Failure stops a processor from accepting new tasks at a given time.
	Failure = dynamic.Failure
	// Reality is one realised draw of actual costs and failures.
	Reality = dynamic.Reality
	// ExecutionResult is the outcome of one simulated online execution.
	ExecutionResult = dynamic.Result
	// OnlinePolicy decides task→processor assignments at run time.
	OnlinePolicy = dynamic.Policy
	// PolicySummary aggregates one policy's makespans over repeated runs.
	PolicySummary = dynamic.Summary
)

// NewReality draws realised costs for a (normalised) problem under the
// uncertainty model; every policy executed against the same Reality faces
// identical conditions.
func NewReality(pr *Problem, u Uncertainty, failures []Failure, rng *rand.Rand) (*Reality, error) {
	return dynamic.NewReality(pr, u, failures, rng)
}

// ExecuteOnline runs a workflow to completion under realised costs with the
// given policy.
func ExecuteOnline(r *Reality, pol OnlinePolicy) (*ExecutionResult, error) {
	return dynamic.Execute(r, pol)
}

// OnlineHDLTSPolicy returns the dynamic HDLTS rule replayed at run time.
func OnlineHDLTSPolicy() OnlinePolicy { return dynamic.OnlineHDLTS{} }

// StaticMappingPolicy deploys a completed offline schedule as a fixed
// task→processor mapping (with minimal failover on processor failure).
func StaticMappingPolicy(name string, s *Schedule) OnlinePolicy {
	return dynamic.NewStaticMapping(name, s)
}

// StaticOrderPolicy keeps an offline dispatch order but re-selects
// processors online by estimated EFT.
func StaticOrderPolicy(name string, s *Schedule) OnlinePolicy {
	return dynamic.NewStaticOrderDynamicEFT(name, s)
}

// WriteExecutionGanttSVG renders an online execution trace as an SVG Gantt
// chart with actual (realised) start and finish times.
func WriteExecutionGanttSVG(w io.Writer, pr *Problem, r *Reality, res *ExecutionResult, title string) error {
	return viz.WriteExecutionGanttSVG(w, pr, r, res, viz.GanttConfig{Title: title})
}

// CompareUnderUncertainty executes the standard policy panel (online HDLTS,
// static HDLTS and HEFT deployments, HEFT order with dynamic EFT) over reps
// realities and returns per-policy summaries.
func CompareUnderUncertainty(pr *Problem, u Uncertainty, failures []Failure, reps int, rng *rand.Rand) ([]PolicySummary, error) {
	return dynamic.Compare(pr, u, failures, reps, rng)
}
