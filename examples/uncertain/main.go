// Uncertain-execution example (the paper's future-work scenario): run the
// same workflows online while actual execution/communication times deviate
// from the planning estimates and processors fail mid-run, and compare the
// dynamic HDLTS policy against static deployments of offline plans.
//
//	go run ./examples/uncertain [-reps 60] [-jitter 0.3] [-fail 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hdlts"
)

func main() {
	reps := flag.Int("reps", 60, "problems × realities per scenario")
	jitter := flag.Float64("jitter", 0.3, "execution/communication jitter fraction (0..1)")
	nfail := flag.Int("fail", 2, "processors (of 8) failing at random times")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	u := hdlts.Uncertainty{ExecJitter: *jitter, CommJitter: *jitter}

	fmt.Printf("Scenario: ±%.0f%% cost jitter, %d of 8 CPUs fail mid-run, %d repetitions.\n\n",
		*jitter*100, *nfail, *reps)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tmean actual SLR\tmean makespan\tvs plan")

	// Aggregate over several independent problems so the comparison is not
	// an artifact of one workload.
	type agg struct {
		slr, mk, deg float64
		n            int
	}
	totals := map[string]*agg{}
	order := []string{}
	problems := (*reps + 2) / 3
	for p := 0; p < problems; p++ {
		pr, err := hdlts.RandomProblem(hdlts.GenParams{
			V: 100, Alpha: 1.0, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		var failures []hdlts.Failure
		for i := 0; i < *nfail; i++ {
			failures = append(failures, hdlts.Failure{Proc: hdlts.Proc(i), At: float64(rng.Intn(400))})
		}
		sums, err := hdlts.CompareUnderUncertainty(pr, u, failures, 3, rng)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range sums {
			a, ok := totals[s.Policy]
			if !ok {
				a = &agg{}
				totals[s.Policy] = a
				order = append(order, s.Policy)
			}
			a.slr += s.SLR.Mean()
			a.mk += s.Makespan.Mean()
			a.deg += s.Degradation.Mean()
			a.n++
		}
	}
	for _, name := range order {
		a := totals[name]
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%.3f\n",
			name, a.slr/float64(a.n), a.mk/float64(a.n), a.deg/float64(a.n))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvs plan = actual makespan / offline HDLTS planned makespan.")
	fmt.Println("The dynamic policies (HDLTS-online, HEFT-order) route around failures;")
	fmt.Println("static deployments can only fail over after the fact and degrade more.")
}
