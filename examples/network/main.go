// Network example: schedule the same workloads on a two-cluster platform
// while the inter-cluster link degrades, exposing how each algorithm copes
// with non-uniform bandwidth — the "network conditions" the paper's future
// work names. The measured outcome (see EXPERIMENTS.md) is a negative
// result for HDLTS: its penalty value conflates execution heterogeneity
// with link-induced EFT spread, so it collapses where mean-rank algorithms
// degrade gracefully.
//
//	go run ./examples/network [-reps 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hdlts"
	"hdlts/internal/stats"
)

func main() {
	reps := flag.Int("reps", 40, "instances per bandwidth point")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	algs := hdlts.Algorithms()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "inter-bw")
	for _, a := range algs {
		fmt.Fprintf(tw, "\t%s", a.Name())
	}
	fmt.Fprintln(tw, "\twinner")

	for _, inter := range []float64{1, 0.5, 0.25, 0.125} {
		pl, err := hdlts.TwoClusters(4, 4, 1, inter)
		if err != nil {
			log.Fatal(err)
		}
		acc := make([]stats.Running, len(algs))
		rng := rand.New(rand.NewSource(*seed))
		for rep := 0; rep < *reps; rep++ {
			g, err := hdlts.RandomGraph(hdlts.GenParams{
				V: 100, Alpha: 1, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2,
			}, rng)
			if err != nil {
				log.Fatal(err)
			}
			pr, err := hdlts.AssignCostsOn(g, pl, hdlts.CostParams{Procs: 8, WDAG: 80, Beta: 1.2, CCR: 2}, rng)
			if err != nil {
				log.Fatal(err)
			}
			for i, alg := range algs {
				s, err := alg.Schedule(pr)
				if err != nil {
					log.Fatalf("%s: %v", alg.Name(), err)
				}
				slr, err := hdlts.SLR(s.Problem(), s.Makespan())
				if err != nil {
					log.Fatal(err)
				}
				acc[i].Add(slr)
			}
		}
		fmt.Fprintf(tw, "1/%g", 1/inter)
		winner, best := "", 0.0
		for i, a := range algs {
			mean := acc[i].Mean()
			fmt.Fprintf(tw, "\t%.3f", mean)
			if i == 0 || mean < best {
				winner, best = a.Name(), mean
			}
		}
		fmt.Fprintf(tw, "\t%s\n", winner)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMean SLR, two 4-CPU clusters, intra-cluster bandwidth 1 (lower is better).")
	fmt.Println("As the inter-cluster link shrinks, σ-priority schedulers (HDLTS, SDBATS)")
	fmt.Println("degrade far faster than mean-rank list schedulers like HEFT.")
}
