// FFT campaign example: generate Fast Fourier Transform workflows for
// growing input sizes, randomise their costs with the paper's W_dag/β/CCR
// model, and compare HDLTS against the baselines — a miniature version of
// the paper's Fig. 6/7 study driven entirely through the public API.
//
//	go run ./examples/fft [-reps 50] [-ccr 3] [-procs 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hdlts"
	"hdlts/internal/stats"
)

func main() {
	reps := flag.Int("reps", 50, "instances per input size")
	ccr := flag.Float64("ccr", 3, "communication-to-computation ratio")
	procs := flag.Int("procs", 4, "processors")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	algs := hdlts.Algorithms()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "points\ttasks")
	for _, a := range algs {
		fmt.Fprintf(tw, "\t%s", a.Name())
	}
	fmt.Fprintln(tw, "\twinner")

	for _, m := range []int{4, 8, 16, 32} {
		g, err := hdlts.FFTGraph(m)
		if err != nil {
			log.Fatal(err)
		}
		acc := make([]stats.Running, len(algs))
		rng := rand.New(rand.NewSource(*seed))
		for rep := 0; rep < *reps; rep++ {
			pr, err := hdlts.AssignCosts(g, hdlts.CostParams{
				Procs: *procs, WDAG: 80, Beta: 1.2, CCR: *ccr,
			}, rng)
			if err != nil {
				log.Fatal(err)
			}
			for i, alg := range algs {
				s, err := alg.Schedule(pr)
				if err != nil {
					log.Fatalf("%s: %v", alg.Name(), err)
				}
				slr, err := hdlts.SLR(s.Problem(), s.Makespan())
				if err != nil {
					log.Fatal(err)
				}
				acc[i].Add(slr)
			}
		}
		fmt.Fprintf(tw, "%d\t%d", m, g.NumTasks())
		winner, best := "", 0.0
		for i, a := range algs {
			mean := acc[i].Mean()
			fmt.Fprintf(tw, "\t%.3f", mean)
			if i == 0 || mean < best {
				winner, best = a.Name(), mean
			}
		}
		fmt.Fprintf(tw, "\t%s\n", winner)
	}
	fmt.Printf("average SLR over %d instances per size (CCR %g, %d CPUs; lower is better)\n",
		*reps, *ccr, *procs)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
