// Montage campaign example: schedule the astronomy-mosaic workflow (the
// paper's Fig. 9 structure at 20/50/100 nodes) across a range of CCR values
// on 5 processors and report the average SLR per algorithm — a miniature
// version of the paper's Fig. 10 study, plus a Gantt chart of one concrete
// HDLTS schedule.
//
//	go run ./examples/montage [-nodes 50] [-reps 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hdlts"
	"hdlts/internal/stats"
)

func main() {
	nodes := flag.Int("nodes", 50, "Montage workflow size (>= 11)")
	reps := flag.Int("reps", 50, "instances per CCR value")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g, err := hdlts.MontageGraph(*nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Montage workflow: %d tasks, %d edges, height %d\n\n", g.NumTasks(), g.NumEdges(), g.Height())

	algs := hdlts.Algorithms()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "CCR")
	for _, a := range algs {
		fmt.Fprintf(tw, "\t%s", a.Name())
	}
	fmt.Fprintln(tw, "\twinner")

	for _, ccr := range []float64{1, 2, 3, 4, 5} {
		acc := make([]stats.Running, len(algs))
		rng := rand.New(rand.NewSource(*seed))
		for rep := 0; rep < *reps; rep++ {
			pr, err := hdlts.AssignCosts(g, hdlts.CostParams{Procs: 5, WDAG: 80, Beta: 1.2, CCR: ccr}, rng)
			if err != nil {
				log.Fatal(err)
			}
			for i, alg := range algs {
				s, err := alg.Schedule(pr)
				if err != nil {
					log.Fatalf("%s: %v", alg.Name(), err)
				}
				slr, err := hdlts.SLR(s.Problem(), s.Makespan())
				if err != nil {
					log.Fatal(err)
				}
				acc[i].Add(slr)
			}
		}
		fmt.Fprintf(tw, "%g", ccr)
		winner, best := "", 0.0
		for i, a := range algs {
			mean := acc[i].Mean()
			fmt.Fprintf(tw, "\t%.3f", mean)
			if i == 0 || mean < best {
				winner, best = a.Name(), mean
			}
		}
		fmt.Fprintf(tw, "\t%s\n", winner)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// One concrete schedule for inspection.
	rng := rand.New(rand.NewSource(*seed))
	pr, err := hdlts.AssignCosts(g, hdlts.CostParams{Procs: 5, WDAG: 80, Beta: 1.2, CCR: 3}, rng)
	if err != nil {
		log.Fatal(err)
	}
	s, err := hdlts.NewHDLTS().Schedule(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOne HDLTS schedule at CCR 3 (makespan %.1f):\n", s.Makespan())
	if err := s.WriteGantt(os.Stdout, 76); err != nil {
		log.Fatal(err)
	}
}
