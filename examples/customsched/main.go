// Customsched shows how to implement a new scheduling algorithm on this
// library's public substrate and benchmark it against the built-in pool.
//
// The demo algorithm is "CriticalFirst": a dynamic list scheduler that
// always dispatches the ready task with the largest remaining bottom-level
// (mean-cost longest path to the exit) to its minimum-EFT processor with
// insertion — a simple but reasonable hybrid of HEFT's global view and
// HDLTS's dynamic dispatch.
//
//	go run ./examples/customsched [-reps 30]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hdlts"
	"hdlts/internal/stats"
)

// CriticalFirst implements hdlts.Algorithm using only the public API.
type CriticalFirst struct{}

// Name identifies the scheduler in comparison tables.
func (CriticalFirst) Name() string { return "CriticalFirst" }

// Schedule dispatches ready tasks by descending bottom-level.
func (CriticalFirst) Schedule(pr *hdlts.Problem) (*hdlts.Schedule, error) {
	pr = pr.Normalize()
	g := pr.G

	// Bottom level: mean execution along the heaviest path to the exit,
	// with mean communication on edges.
	blevel, err := g.DownwardDistance(
		func(t hdlts.TaskID) float64 { return pr.W.Mean(int(t)) },
		func(_, _ hdlts.TaskID, data float64) float64 { return pr.MeanComm(data) },
	)
	if err != nil {
		return nil, err
	}

	s := hdlts.NewSchedule(pr)
	remaining := make([]int, g.NumTasks())
	var ready []hdlts.TaskID
	for t := 0; t < g.NumTasks(); t++ {
		remaining[t] = g.InDegree(hdlts.TaskID(t))
		if remaining[t] == 0 {
			ready = append(ready, hdlts.TaskID(t))
		}
	}
	for len(ready) > 0 {
		best := 0
		for i, t := range ready[1:] {
			if blevel[t] > blevel[ready[best]] {
				best = i + 1
			}
		}
		t := ready[best]
		ready = append(ready[:best], ready[best+1:]...)

		e, err := s.BestEFT(t, hdlts.InsertionPolicy)
		if err != nil {
			return nil, err
		}
		if err := s.Commit(e); err != nil {
			return nil, err
		}
		for _, a := range g.Succs(t) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				ready = append(ready, a.Task)
			}
		}
	}
	return s, nil
}

func main() {
	reps := flag.Int("reps", 30, "instances averaged")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	algs := append([]hdlts.Algorithm{CriticalFirst{}}, hdlts.Algorithms()...)
	acc := make([]stats.Running, len(algs))
	rng := rand.New(rand.NewSource(*seed))
	for rep := 0; rep < *reps; rep++ {
		pr, err := hdlts.RandomProblem(hdlts.GenParams{
			V: 150, Alpha: 1.0, Density: 3, CCR: 3, Procs: 6, WDAG: 80, Beta: 1.2,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		for i, alg := range algs {
			s, err := alg.Schedule(pr)
			if err != nil {
				log.Fatalf("%s: %v", alg.Name(), err)
			}
			if err := s.Validate(); err != nil {
				log.Fatalf("%s produced an invalid schedule: %v", alg.Name(), err)
			}
			slr, err := hdlts.SLR(s.Problem(), s.Makespan())
			if err != nil {
				log.Fatal(err)
			}
			acc[i].Add(slr)
		}
	}

	fmt.Printf("custom scheduler vs built-ins, %d random 150-task instances:\n\n", *reps)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tmean SLR")
	for i, alg := range algs {
		fmt.Fprintf(tw, "%s\t%.3f\n", alg.Name(), acc[i].Mean())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
