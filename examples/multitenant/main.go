// Multitenant example: three different scientific workflows (FFT, Montage,
// Molecular Dynamics) arrive at one shared heterogeneous cluster and are
// co-scheduled as a single merged DAG. The example reports each tenant's
// finish time and the cluster utilisation, comparing HDLTS against HEFT —
// a scenario one step beyond the paper (which schedules one application at
// a time) but directly supported by its pseudo-task normalisation.
//
//	go run ./examples/multitenant [-procs 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hdlts"
)

func main() {
	procs := flag.Int("procs", 6, "shared cluster size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fft, err := hdlts.FFTGraph(8)
	if err != nil {
		log.Fatal(err)
	}
	montage, err := hdlts.MontageGraph(30)
	if err != nil {
		log.Fatal(err)
	}
	md := hdlts.MolDynGraph()
	tenants := []string{"FFT-8", "Montage-30", "MolDyn"}
	sizes := []int{fft.NumTasks(), montage.NumTasks(), md.NumTasks()}

	merged, offsets, err := hdlts.MergeGraphs(fft, montage, md)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	pr, err := hdlts.AssignCosts(merged, hdlts.CostParams{Procs: *procs, WDAG: 60, Beta: 1.2, CCR: 2}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged workload: %d tasks from %d tenants on %d CPUs\n\n",
		merged.NumTasks(), len(tenants), *procs)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "algorithm\tmakespan")
	for _, name := range tenants {
		fmt.Fprintf(tw, "\t%s done", name)
	}
	fmt.Fprintln(tw, "\tmean util")

	for _, alg := range []hdlts.Algorithm{hdlts.NewHDLTS(), mustAlg("heft"), mustAlg("sdbats")} {
		s, err := alg.Schedule(pr)
		if err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := s.Validate(); err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		fmt.Fprintf(tw, "%s\t%.1f", alg.Name(), s.Makespan())
		for ti := range tenants {
			// A tenant is done when its last task finishes.
			done := 0.0
			for t := 0; t < sizes[ti]; t++ {
				pl, ok := s.PlacementOf(offsets[ti] + hdlts.TaskID(t))
				if !ok {
					log.Fatalf("%s: tenant %s task %d unscheduled", alg.Name(), tenants[ti], t)
				}
				if pl.Finish > done {
					done = pl.Finish
				}
			}
			fmt.Fprintf(tw, "\t%.1f", done)
		}
		a, err := s.Analyze()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "\t%.0f%%\n", a.MeanUtilization*100)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEach tenant's tasks keep their identity through MergeGraphs offsets,")
	fmt.Println("so per-tenant completion times fall out of one shared schedule.")
}

func mustAlg(name string) hdlts.Algorithm {
	a, err := hdlts.GetAlgorithm(name)
	if err != nil {
		log.Fatal(err)
	}
	return a
}
