// Papertrace reproduces the paper's worked example end to end: it replays
// HDLTS on the Fig. 1 workflow (the classic 10-task / 3-processor instance)
// and prints every Table I row — ready set, penalty values, selected task,
// EFT vector, chosen CPU — followed by the final Gantt chart and the
// makespans of all six algorithms.
//
//	go run ./examples/papertrace
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
)

import "hdlts"

func main() {
	pr := hdlts.PaperExample()
	s, steps, err := hdlts.ScheduleWithTrace(pr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HDLTS on the Fig. 1 example (paper Table I):")
	for i, st := range steps {
		var ready []string
		for j, t := range st.Ready {
			ready = append(ready, fmt.Sprintf("T%d:%.1f", t+1, st.PV[j]))
		}
		dup := ""
		if st.Duplicated {
			dup = " [entry duplicated]"
		}
		fmt.Printf("  step %2d: {%s} -> T%d on P%d, EFT %g%s\n",
			i+1, strings.Join(ready, " "), st.Selected+1, st.Proc+1, st.EFT[st.Proc], dup)
	}
	fmt.Printf("HDLTS makespan: %g (paper reports 73)\n\n", s.Makespan())
	if err := s.WriteGantt(os.Stdout, 72); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nAll algorithms on the same instance:")
	for _, alg := range hdlts.Algorithms() {
		as, err := alg.Schedule(pr)
		if err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		fmt.Printf("  %-7s makespan %g\n", alg.Name(), as.Makespan())
	}
	fmt.Println("(paper quotes: HDLTS 73, HEFT 80, PETS 77, PEFT 86, SDBATS 74)")
}
