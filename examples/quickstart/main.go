// Quickstart: build a small workflow by hand, schedule it with HDLTS and
// every baseline, and compare makespans and metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hdlts"
)

func main() {
	// A five-task diamond pipeline: ingest fans out to three analysis
	// kernels which join in a report task. Edge values are data volumes;
	// with a uniform-bandwidth platform they are communication times.
	g := hdlts.NewGraph(5)
	ingest := g.AddTask("ingest")
	filter := g.AddTask("filter")
	transform := g.AddTask("transform")
	index := g.AddTask("index")
	report := g.AddTask("report")
	for _, e := range []struct {
		u, v hdlts.TaskID
		data float64
	}{
		{ingest, filter, 20}, {ingest, transform, 14}, {ingest, index, 25},
		{filter, report, 9}, {transform, report, 11}, {index, report, 6},
	} {
		if err := g.AddEdge(e.u, e.v, e.data); err != nil {
			log.Fatal(err)
		}
	}

	// Three heterogeneous processors: each row is one task's execution time
	// on P1..P3 (e.g. "index" is fastest on the third machine).
	w, err := hdlts.CostsFromRows([][]float64{
		{12, 18, 9},  // ingest
		{16, 10, 14}, // filter
		{11, 13, 20}, // transform
		{17, 12, 8},  // index
		{7, 15, 10},  // report
	})
	if err != nil {
		log.Fatal(err)
	}
	pl, err := hdlts.NewUniformPlatform(3)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := hdlts.NewProblem(g, pl, w)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tmakespan\tSLR\tspeedup\tefficiency")
	for _, alg := range hdlts.Algorithms() {
		s, err := alg.Schedule(pr)
		if err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		res, err := hdlts.Evaluate(alg.Name(), s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%g\t%.3f\t%.3f\t%.3f\n",
			res.Algorithm, res.Makespan, res.SLR, res.Speedup, res.Efficiency)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// Show where HDLTS actually put things.
	s, err := hdlts.NewHDLTS().Schedule(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHDLTS schedule:")
	if err := s.WriteGantt(os.Stdout, 60); err != nil {
		log.Fatal(err)
	}
}
