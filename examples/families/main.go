// Families example: pit every scheduler family in the library against each
// other on one workload — the paper's six list schedulers plus the
// task-duplication (DHEFT), clustering (DSC), genetic (GA), and greedy
// (DLS/MCT/MinMin/MaxMin) representatives its Related Work surveys — and
// report makespan, SLR, runtime, and schedule analysis.
//
//	go run ./examples/families [-kind gauss|fft|montage|moldyn|random] [-reps 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"hdlts"
	"hdlts/internal/stats"
)

func main() {
	kind := flag.String("kind", "gauss", "workload: gauss | fft | montage | moldyn | random")
	reps := flag.Int("reps", 20, "instances averaged")
	procs := flag.Int("procs", 4, "processors")
	ccr := flag.Float64("ccr", 2, "communication-to-computation ratio")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	build := func() (*hdlts.Graph, error) {
		switch *kind {
		case "gauss":
			return hdlts.GaussianGraph(8)
		case "fft":
			return hdlts.FFTGraph(16)
		case "montage":
			return hdlts.MontageGraph(50)
		case "moldyn":
			return hdlts.MolDynGraph(), nil
		case "random":
			return hdlts.RandomGraph(hdlts.GenParams{
				V: 100, Alpha: 1.0, Density: 3, CCR: *ccr, Procs: *procs, WDAG: 80, Beta: 1.2,
			}, rng)
		default:
			return nil, fmt.Errorf("unknown -kind %q", *kind)
		}
	}

	algs := hdlts.ExtendedAlgorithms()
	slr := make([]stats.Running, len(algs))
	rpd := make([]stats.Running, len(algs))
	dur := make([]stats.Running, len(algs))
	dups := make([]stats.Running, len(algs))

	for rep := 0; rep < *reps; rep++ {
		g, err := build()
		if err != nil {
			log.Fatal(err)
		}
		pr, err := hdlts.AssignCosts(g, hdlts.CostParams{Procs: *procs, WDAG: 80, Beta: 1.2, CCR: *ccr}, rng)
		if err != nil {
			log.Fatal(err)
		}
		makespans := make([]float64, len(algs))
		for i, alg := range algs {
			start := time.Now()
			s, err := alg.Schedule(pr)
			if err != nil {
				log.Fatalf("%s: %v", alg.Name(), err)
			}
			dur[i].Add(float64(time.Since(start).Microseconds()))
			v, err := hdlts.SLR(s.Problem(), s.Makespan())
			if err != nil {
				log.Fatal(err)
			}
			slr[i].Add(v)
			dups[i].Add(float64(s.NumDuplicates()))
			makespans[i] = s.Makespan()
		}
		devs, err := hdlts.RPD(makespans)
		if err != nil {
			log.Fatal(err)
		}
		for i, d := range devs {
			rpd[i].Add(d)
		}
	}

	fmt.Printf("workload %s, %d CPUs, CCR %g, %d instances (mean values):\n\n", *kind, *procs, *ccr, *reps)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tfamily\tSLR\tRPD%\truntime µs\tduplicates")
	family := map[string]string{
		"HDLTS": "dynamic list (the paper)", "HEFT": "static list", "PETS": "static list",
		"CPOP": "static list", "PEFT": "static list", "SDBATS": "static list + dup",
		"DHEFT": "task duplication", "DLS": "dynamic list", "DSC": "clustering",
		"GA": "genetic search", "MCT": "greedy", "MinMin": "greedy", "MaxMin": "greedy",
	}
	for i, alg := range algs {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.1f\t%.0f\t%.1f\n",
			alg.Name(), family[alg.Name()], slr[i].Mean(), rpd[i].Mean(), dur[i].Mean(), dups[i].Mean())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLower SLR/RPD is better (RPD = % above the per-instance best). GA trades")
	fmt.Println("orders of magnitude more runtime for its quality — the cost/quality trade-off\nthe paper's related work discusses.")
}
