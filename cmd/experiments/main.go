// Command experiments regenerates the paper's evaluation: every figure
// (average SLR / efficiency curves over random, FFT, Montage, and Molecular
// Dynamics workflows) and the Table I step trace.
//
// Usage:
//
//	experiments -run all                  # every figure, text tables
//	experiments -run fig2,fig4 -reps 200  # selected figures, more samples
//	experiments -run tableI               # the worked-example trace
//	experiments -mode paper               # uniform avail-based placement
//	experiments -csv out/                 # additionally write CSV per figure
//
// Modes: "canonical" (default) runs every baseline exactly as its original
// paper specifies (insertion-based placement); "paper" runs all schedulers
// with avail-based placement, the configuration under which the HDLTS
// paper's published comparison shape reproduces (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hdlts/internal/core"
	"hdlts/internal/experiments"
	"hdlts/internal/obs"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// options collects every CLI knob; tests drive mainErr directly with one.
type options struct {
	Run      string
	Reps     int
	Seed     int64
	Workers  int
	Mode     string
	Algs     string
	CSVDir   string
	SVGDir   string
	Validate bool
	Quiet    bool
	// Events streams every campaign's decision events as JSON Lines to
	// this file (use -workers 1 for a reproducible stream).
	Events string
	// Stats dumps the runtime metrics registry (Prometheus text) to Err
	// after the campaigns.
	Stats bool
	// Err receives progress, -stats output, and diagnostics (defaults to
	// os.Stderr).
	Err io.Writer
}

func main() {
	var o options
	flag.StringVar(&o.Run, "run", "all", "comma-separated experiment ids (fig2,...,fig14,tableI) or 'all'")
	flag.IntVar(&o.Reps, "reps", 100, "repetitions per x-point (the paper used 1000)")
	flag.Int64Var(&o.Seed, "seed", 1, "campaign master seed")
	flag.IntVar(&o.Workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.StringVar(&o.Mode, "mode", "canonical", "baseline mode: canonical | paper")
	flag.StringVar(&o.Algs, "algs", "", "comma-separated algorithm subset (default: all six)")
	flag.StringVar(&o.CSVDir, "csv", "", "directory to also write one CSV per figure")
	flag.StringVar(&o.SVGDir, "svg", "", "directory to also write one SVG chart per figure")
	flag.BoolVar(&o.Validate, "validate", false, "re-validate every schedule (slower)")
	flag.BoolVar(&o.Quiet, "q", false, "suppress progress output")
	flag.StringVar(&o.Events, "events", "", "write decision events as JSON Lines to this file (-workers 1 for a stable order)")
	flag.BoolVar(&o.Stats, "stats", false, "print runtime metrics (Prometheus text) to stderr")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()
	if *list {
		fmt.Println("tableI")
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		fmt.Println("ext-uncertain\next-failure\next-network")
		return
	}
	if err := mainErr(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func mainErr(out io.Writer, o options) error {
	if o.Err == nil {
		o.Err = os.Stderr
	}
	var pool []sched.Algorithm
	switch o.Mode {
	case "canonical":
		pool = registry.All()
	case "paper":
		pool = registry.PaperMode()
	default:
		return fmt.Errorf("unknown -mode %q (want canonical or paper)", o.Mode)
	}
	if o.Algs != "" {
		keep := map[string]bool{}
		for _, a := range strings.Split(o.Algs, ",") {
			keep[strings.ToLower(strings.TrimSpace(a))] = true
		}
		var sel []sched.Algorithm
		for _, a := range pool {
			if keep[strings.ToLower(a.Name())] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			return fmt.Errorf("-algs %q selected no algorithms", o.Algs)
		}
		pool = sel
	}

	var ids []string
	if o.Run == "all" {
		ids = append(ids, "tableI")
		for _, e := range experiments.All() {
			ids = append(ids, e.Name)
		}
		ids = append(ids, "ext-uncertain", "ext-failure", "ext-network")
	} else {
		ids = strings.Split(o.Run, ",")
	}

	cfg := experiments.Config{Reps: o.Reps, Seed: o.Seed, Workers: o.Workers, Algorithms: pool, Validate: o.Validate}
	if !o.Quiet {
		cfg.Progress = func(s string) { fmt.Fprintln(o.Err, s) }
	}
	var jsonl *obs.JSONLSink
	if o.Events != "" {
		f, err := os.Create(o.Events)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = obs.NewJSONL(f)
		cfg.Tracer = jsonl
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "tableI" {
			if err := printTableI(out); err != nil {
				return err
			}
			continue
		}
		start := time.Now()
		var tbl *experiments.Table
		var err error
		switch id {
		case "ext-uncertain":
			tbl, err = experiments.RunExtUncertain(cfg)
		case "ext-failure":
			tbl, err = experiments.RunExtFailure(cfg)
		case "ext-network":
			tbl, err = experiments.RunExtNetwork(cfg)
		default:
			var e experiments.Experiment
			if e, err = experiments.ByName(id); err == nil {
				tbl, err = experiments.Run(e, cfg)
			}
		}
		if err != nil {
			return err
		}
		if !o.Quiet {
			fmt.Fprintf(o.Err, "%s finished in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
		if err := tbl.WriteText(out); err != nil {
			return err
		}
		if o.CSVDir != "" {
			if err := writeArtifact(o.CSVDir, id+".csv", tbl.WriteCSV); err != nil {
				return err
			}
		}
		if o.SVGDir != "" {
			if err := writeArtifact(o.SVGDir, id+".svg", tbl.WriteSVG); err != nil {
				return err
			}
		}
	}
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			return fmt.Errorf("writing %s: %w", o.Events, err)
		}
	}
	if o.Stats {
		if err := obs.Default().WritePrometheus(o.Err); err != nil {
			return err
		}
	}
	return nil
}

// writeArtifact creates dir/name and streams render into it.
func writeArtifact(dir, name string, render func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printTableI replays HDLTS on the Fig. 1 example and prints the step trace
// in the layout of the paper's Table I.
func printTableI(out io.Writer) error {
	pr := workflows.PaperExample()
	s, steps, err := core.New().ScheduleTrace(pr)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Table I — HDLTS schedule produced at each step (Fig. 1 example)")
	fmt.Fprintf(out, "%-5s %-28s %-30s %-9s %s\n", "Step", "Ready tasks", "Penalty values", "Selected", "EFT per CPU")
	for i, st := range steps {
		var ready, pvs, efts []string
		for j, t := range st.Ready {
			ready = append(ready, fmt.Sprintf("T%d", t+1))
			pvs = append(pvs, fmt.Sprintf("%.1f", st.PV[j]))
		}
		for _, e := range st.EFT {
			efts = append(efts, fmt.Sprintf("%g", e))
		}
		dup := ""
		if st.Duplicated {
			dup = " (+entry dup)"
		}
		fmt.Fprintf(out, "%-5d %-28s %-30s %-9s %s -> P%d%s\n",
			i+1, strings.Join(ready, ","), strings.Join(pvs, ","),
			fmt.Sprintf("T%d", st.Selected+1), strings.Join(efts, " "), st.Proc+1, dup)
	}
	fmt.Fprintf(out, "makespan = %g (paper: 73; HEFT: 80, SDBATS: 74)\n\n", s.Makespan())
	fmt.Fprintln(out, "Gantt chart:")
	return s.WriteGantt(out, 72)
}
