package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPrintTableI(t *testing.T) {
	var buf bytes.Buffer
	if err := printTableI(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I",
		"makespan = 73",
		"T6", // step-2 selection
		"(+entry dup)",
		"Gantt chart:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMainErrTableIOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, options{Run: "tableI", Reps: 1, Seed: 1, Workers: 1, Mode: "canonical", Quiet: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "makespan = 73") {
		t.Fatal("tableI output missing")
	}
}

func TestMainErrRunsOneFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, options{Run: "fig13", Reps: 2, Seed: 1, Mode: "canonical", Validate: true, Quiet: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig13") || !strings.Contains(out, "HDLTS") || !strings.Contains(out, "Winner") {
		t.Fatalf("figure table malformed:\n%s", out)
	}
}

func TestMainErrPaperModeAndSubset(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, options{Run: "fig13", Reps: 1, Seed: 1, Mode: "paper", Algs: "hdlts,heft", Quiet: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "HDLTS") || !strings.Contains(out, "HEFT") {
		t.Fatalf("subset missing algorithms:\n%s", out)
	}
	if strings.Contains(out, "SDBATS") {
		t.Fatalf("subset leaked extra algorithms:\n%s", out)
	}
}

func TestMainErrCSVAndSVGOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := mainErr(&buf, options{Run: "fig13", Reps: 1, Seed: 1, Mode: "canonical", Algs: "hdlts,heft", CSVDir: dir, SVGDir: dir, Quiet: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig13.csv", "fig13.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
	}
}

// TestMainErrEventsAndStats drives a tiny campaign with the JSONL event
// sink and -stats enabled and checks both outputs.
func TestMainErrEventsAndStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	var buf, errBuf bytes.Buffer
	o := options{Run: "fig13", Reps: 1, Seed: 1, Workers: 1, Mode: "canonical",
		Algs: "hdlts,heft", Quiet: true, Events: path, Stats: true, Err: &errBuf}
	if err := mainErr(&buf, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("no events written")
	}
	algs := map[string]bool{}
	for i, ln := range lines {
		var ev struct {
			Alg string `json:"alg"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, ln)
		}
		algs[ev.Alg] = true
	}
	if !algs["HDLTS"] || !algs["HEFT"] {
		t.Fatalf("events missing algorithm stamps: %v", algs)
	}
	if !strings.Contains(errBuf.String(), "hdlts_experiments_reps_total") {
		t.Fatalf("-stats output missing counters:\n%s", errBuf.String())
	}
}

func TestMainErrRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, options{Run: "fig2", Reps: 1, Seed: 1, Mode: "bogus", Quiet: true}); err == nil {
		t.Error("bad mode accepted")
	}
	if err := mainErr(&buf, options{Run: "fig99", Reps: 1, Seed: 1, Mode: "canonical", Quiet: true}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := mainErr(&buf, options{Run: "fig2", Reps: 1, Seed: 1, Mode: "canonical", Algs: "nosuchalg", Quiet: true}); err == nil {
		t.Error("empty algorithm subset accepted")
	}
}
