package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPrintTableI(t *testing.T) {
	var buf bytes.Buffer
	if err := printTableI(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I",
		"makespan = 73",
		"T6", // step-2 selection
		"(+entry dup)",
		"Gantt chart:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMainErrTableIOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, "tableI", 1, 1, 1, "canonical", "", "", "", false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "makespan = 73") {
		t.Fatal("tableI output missing")
	}
}

func TestMainErrRunsOneFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, "fig13", 2, 1, 0, "canonical", "", "", "", true, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig13") || !strings.Contains(out, "HDLTS") || !strings.Contains(out, "Winner") {
		t.Fatalf("figure table malformed:\n%s", out)
	}
}

func TestMainErrPaperModeAndSubset(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, "fig13", 1, 1, 0, "paper", "hdlts,heft", "", "", false, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "HDLTS") || !strings.Contains(out, "HEFT") {
		t.Fatalf("subset missing algorithms:\n%s", out)
	}
	if strings.Contains(out, "SDBATS") {
		t.Fatalf("subset leaked extra algorithms:\n%s", out)
	}
}

func TestMainErrCSVAndSVGOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := mainErr(&buf, "fig13", 1, 1, 0, "canonical", "hdlts,heft", dir, dir, false, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig13.csv", "fig13.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
	}
}

func TestMainErrRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, "fig2", 1, 1, 0, "bogus", "", "", "", false, true); err == nil {
		t.Error("bad mode accepted")
	}
	if err := mainErr(&buf, "fig99", 1, 1, 0, "canonical", "", "", "", false, true); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := mainErr(&buf, "fig2", 1, 1, 0, "canonical", "nosuchalg", "", "", false, true); err == nil {
		t.Error("empty algorithm subset accepted")
	}
}
