// Command hdltsched schedules one workflow problem (JSON, as produced by
// cmd/dagen) with a chosen algorithm and reports the makespan, the paper's
// metrics, and optionally a Gantt chart or the HDLTS decision trace.
//
// Usage:
//
//	dagen -kind fft -m 8 | hdltsched -alg hdlts -gantt
//	hdltsched -alg heft -in problem.json
//	hdltsched -alg all -in problem.json        # compare all six algorithms
//	hdltsched -alg hdlts -trace -in problem.json
//	hdltsched -alg all -events ev.jsonl -chrome-trace trace.json -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"encoding/json"

	"hdlts/internal/core"
	"hdlts/internal/dag"
	"hdlts/internal/explain"
	"hdlts/internal/metrics"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/viz"
)

// options collects every CLI knob; tests drive run directly with one.
type options struct {
	Alg      string
	In       string
	Gantt    bool
	Trace    bool
	Validate bool
	Width    int
	SVG      string
	OutJSON  string
	Analyze  bool
	CP       bool
	// Events streams decision events as JSON Lines to this file.
	Events string
	// ChromeTrace writes a Chrome trace-event JSON (chrome://tracing /
	// Perfetto) with one process track per algorithm.
	ChromeTrace string
	// Stats dumps the runtime metrics registry (Prometheus text) to Err
	// after scheduling.
	Stats bool
	// Explain prints the schedule explainability report (placement
	// rationale, critical path, per-processor accounting) as JSON.
	Explain bool
	// Err receives -stats output and diagnostics (defaults to os.Stderr).
	Err io.Writer
}

func main() {
	var o options
	flag.StringVar(&o.Alg, "alg", "hdlts", "algorithm: the paper's six (hdlts|heft|cpop|pets|peft|sdbats), 'all' for those six, or an extended name (dheft|dls|dsc|ga|mct|minmin|maxmin)")
	flag.StringVar(&o.In, "in", "-", "input problem JSON file ('-' = stdin)")
	flag.BoolVar(&o.Gantt, "gantt", false, "print a Gantt chart")
	flag.BoolVar(&o.Trace, "trace", false, "print the HDLTS per-step trace (hdlts only)")
	flag.BoolVar(&o.Validate, "validate", true, "re-validate the schedule")
	flag.IntVar(&o.Width, "width", 72, "Gantt chart width in characters")
	flag.StringVar(&o.SVG, "svg", "", "write an SVG Gantt chart to this file (per-algorithm suffix with -alg all)")
	flag.StringVar(&o.OutJSON, "out", "", "write the schedule as JSON to this file (per-algorithm suffix with -alg all)")
	flag.BoolVar(&o.Analyze, "analyze", false, "print utilisation / communication analysis")
	flag.BoolVar(&o.CP, "cp", false, "print the minimum-cost critical path and the SLR lower bound")
	flag.StringVar(&o.Events, "events", "", "write decision events as JSON Lines to this file")
	flag.StringVar(&o.ChromeTrace, "chrome-trace", "", "write a Chrome trace-event JSON to this file")
	flag.BoolVar(&o.Stats, "stats", false, "print runtime metrics (Prometheus text) to stderr")
	flag.BoolVar(&o.Explain, "explain", false, "print the schedule explainability report as JSON (per-task rationale with hdlts)")
	flag.Parse()
	if err := run(os.Stdout, os.Stdin, o); err != nil {
		fmt.Fprintln(os.Stderr, "hdltsched:", err)
		os.Exit(1)
	}
}

// tracedAlgs lists the algorithms that produce a per-step decision trace
// for the -trace flag.
var tracedAlgs = []string{"hdlts"}

func run(out io.Writer, stdin io.Reader, o options) error {
	if o.Err == nil {
		o.Err = os.Stderr
	}
	if o.Trace && !traceSupported(o.Alg) {
		return fmt.Errorf("-trace is only available for algorithms with a decision trace (%s); "+
			"got -alg %s — use -alg %s, or -alg all to include it, or drop -trace (-events works with every algorithm)",
			strings.Join(tracedAlgs, ", "), o.Alg, tracedAlgs[0])
	}

	r := stdin
	if o.In != "-" {
		f, err := os.Open(o.In)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	pr, err := sched.ReadProblemJSON(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "problem: %d tasks, %d edges, %d processors\n", pr.NumTasks(), pr.G.NumEdges(), pr.NumProcs())
	if o.CP {
		if err := printCriticalPath(out, pr); err != nil {
			return err
		}
	}

	var algos []sched.Algorithm
	if strings.EqualFold(o.Alg, "all") {
		algos = registry.All()
	} else {
		a, err := registry.Get(o.Alg)
		if err != nil {
			return err
		}
		algos = append(algos, a)
	}

	// Observability sinks: JSONL events and/or a Chrome trace, fanned out
	// through one tracer attached per algorithm run.
	var sinks []obs.Tracer
	var jsonl *obs.JSONLSink
	if o.Events != "" {
		f, err := os.Create(o.Events)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = obs.NewJSONL(f)
		sinks = append(sinks, jsonl)
	}
	var chrome *obs.ChromeSink
	if o.ChromeTrace != "" {
		chrome = obs.NewChrome()
		names := make([]string, pr.NumProcs())
		for p := range names {
			names[p] = pr.P.Name(platform.Proc(p))
		}
		chrome.SetProcNames(names)
		sinks = append(sinks, chrome)
	}
	tracer := obs.Multi(sinks...)

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tmakespan\tSLR\tspeedup\tefficiency\tduplicates")
	for _, a := range algos {
		prA := pr
		if tracer.Enabled() {
			prA = pr.WithTracer(obs.Named(tracer, a.Name()))
		}
		var s *sched.Schedule
		var decisions []core.Decision
		switch {
		case o.Trace && a.Name() == "HDLTS":
			var steps []core.Step
			s, steps, err = core.New().ScheduleTrace(prA)
			if err != nil {
				return err
			}
			printTrace(out, steps)
		case o.Explain:
			// Capture per-task rationale when the algorithm supports it; a
			// plain solve still yields the structural report surfaces.
			if ex, ok := a.(explain.Explainer); ok {
				s, decisions, err = ex.ScheduleExplained(prA)
			} else {
				s, err = a.Schedule(prA)
			}
			if err != nil {
				return fmt.Errorf("%s: %w", a.Name(), err)
			}
		default:
			s, err = a.Schedule(prA)
			if err != nil {
				return fmt.Errorf("%s: %w", a.Name(), err)
			}
		}
		if o.Validate {
			if err := s.Validate(); err != nil {
				return fmt.Errorf("%s: invalid schedule: %w", a.Name(), err)
			}
		}
		res, err := metrics.Evaluate(a.Name(), s)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.4f\t%.4f\t%.4f\t%d\n",
			res.Algorithm, res.Makespan, res.SLR, res.Speedup, res.Efficiency, res.Duplicates)
		if o.Gantt {
			tw.Flush()
			if err := s.WriteGantt(out, o.Width); err != nil {
				return err
			}
		}
		if o.Analyze {
			tw.Flush()
			an, err := s.Analyze()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s analysis:\n%s", a.Name(), an.String())
			slack, err := s.ComputeSlack()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "slack: total %.4g across %d tasks, %d critical\n",
				slack.TotalSlack, len(slack.Slack), len(slack.Critical))
		}
		if o.Explain {
			tw.Flush()
			rep, err := explain.Schedule(s, a.Name(), decisions)
			if err != nil {
				return err
			}
			b, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s\n", b)
		}
		if o.SVG != "" {
			cfg := viz.GanttConfig{Title: fmt.Sprintf("%s — makespan %.4g", a.Name(), s.Makespan())}
			err := writeFile(perAlgPath(o.SVG, a.Name(), len(algos) > 1), func(w io.Writer) error {
				return viz.WriteGanttSVG(w, s, cfg)
			})
			if err != nil {
				return err
			}
		}
		if o.OutJSON != "" {
			err := writeFile(perAlgPath(o.OutJSON, a.Name(), len(algos) > 1), func(w io.Writer) error {
				return s.WriteScheduleJSON(w, a.Name())
			})
			if err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			return fmt.Errorf("writing %s: %w", o.Events, err)
		}
	}
	if chrome != nil {
		err := writeFile(o.ChromeTrace, func(w io.Writer) error { return chrome.WriteJSON(w) })
		if err != nil {
			return err
		}
	}
	if o.Stats {
		if err := obs.Default().WritePrometheus(o.Err); err != nil {
			return err
		}
	}
	return nil
}

// traceSupported reports whether -trace can honour the algorithm selection
// ("all" includes HDLTS, so it qualifies).
func traceSupported(alg string) bool {
	if strings.EqualFold(alg, "all") {
		return true
	}
	for _, a := range tracedAlgs {
		if strings.EqualFold(alg, a) {
			return true
		}
	}
	return false
}

// perAlgPath suffixes path with the algorithm name when several schedules
// are written.
func perAlgPath(path, alg string, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + strings.ToLower(alg) + ext
}

// writeFile creates path and streams render into it.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printCriticalPath reports the minimum-execution-cost critical path (the
// SLR denominator of Eq. 10).
func printCriticalPath(out io.Writer, pr *sched.Problem) error {
	node := func(t dag.TaskID) float64 {
		m, _ := pr.W.Min(int(t))
		return m
	}
	path, total, err := pr.G.CriticalPath(node, dag.ZeroEdges)
	if err != nil {
		return err
	}
	names := make([]string, len(path))
	for i, t := range path {
		if n := pr.G.Task(t).Name; n != "" {
			names[i] = n
		} else {
			names[i] = fmt.Sprintf("T%d", int(t)+1)
		}
	}
	_, err = fmt.Fprintf(out, "critical path (min costs): %s - lower bound %.6g\n",
		strings.Join(names, " -> "), total)
	return err
}

func printTrace(out io.Writer, steps []core.Step) {
	fmt.Fprintln(out, "HDLTS trace:")
	for i, st := range steps {
		var ready []string
		for j, t := range st.Ready {
			ready = append(ready, fmt.Sprintf("T%d(pv %.1f)", t+1, st.PV[j]))
		}
		dup := ""
		if st.Duplicated {
			dup = " +dup"
		}
		fmt.Fprintf(out, "  step %d: ready {%s} -> T%d on P%d (EFT %g)%s\n",
			i+1, strings.Join(ready, " "), st.Selected+1, st.Proc+1, st.EFT[st.Proc], dup)
	}
}
