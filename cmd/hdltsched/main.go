// Command hdltsched schedules one workflow problem (JSON, as produced by
// cmd/dagen) with a chosen algorithm and reports the makespan, the paper's
// metrics, and optionally a Gantt chart or the HDLTS decision trace.
//
// Usage:
//
//	dagen -kind fft -m 8 | hdltsched -alg hdlts -gantt
//	hdltsched -alg heft -in problem.json
//	hdltsched -alg all -in problem.json        # compare all six algorithms
//	hdltsched -alg hdlts -trace -in problem.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"hdlts/internal/core"
	"hdlts/internal/dag"
	"hdlts/internal/metrics"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/viz"
)

func main() {
	var (
		alg      = flag.String("alg", "hdlts", "algorithm (hdlts|heft|cpop|pets|peft|sdbats|all)")
		in       = flag.String("in", "-", "input problem JSON file ('-' = stdin)")
		gantt    = flag.Bool("gantt", false, "print a Gantt chart")
		trace    = flag.Bool("trace", false, "print the HDLTS per-step trace (hdlts only)")
		validate = flag.Bool("validate", true, "re-validate the schedule")
		width    = flag.Int("width", 72, "Gantt chart width in characters")
		svg      = flag.String("svg", "", "write an SVG Gantt chart to this file (per-algorithm suffix with -alg all)")
		outJSON  = flag.String("out", "", "write the schedule as JSON to this file (per-algorithm suffix with -alg all)")
		analyze  = flag.Bool("analyze", false, "print utilisation / communication analysis")
		cp       = flag.Bool("cp", false, "print the minimum-cost critical path and the SLR lower bound")
	)
	flag.Parse()
	if err := run(os.Stdout, os.Stdin, *alg, *in, *gantt, *trace, *validate, *width, *svg, *outJSON, *analyze, *cp); err != nil {
		fmt.Fprintln(os.Stderr, "hdltsched:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, stdin io.Reader, alg, in string, gantt, trace, validate bool, width int, svgPath, outPath string, analyze, cp bool) error {
	r := stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	pr, err := sched.ReadProblemJSON(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "problem: %d tasks, %d edges, %d processors\n", pr.NumTasks(), pr.G.NumEdges(), pr.NumProcs())
	if cp {
		if err := printCriticalPath(out, pr); err != nil {
			return err
		}
	}

	var algos []sched.Algorithm
	if strings.EqualFold(alg, "all") {
		algos = registry.All()
	} else {
		a, err := registry.Get(alg)
		if err != nil {
			return err
		}
		algos = append(algos, a)
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tmakespan\tSLR\tspeedup\tefficiency\tduplicates")
	for _, a := range algos {
		var s *sched.Schedule
		if trace && a.Name() == "HDLTS" {
			var steps []core.Step
			s, steps, err = core.New().ScheduleTrace(pr)
			if err != nil {
				return err
			}
			printTrace(out, steps)
		} else {
			s, err = a.Schedule(pr)
			if err != nil {
				return fmt.Errorf("%s: %w", a.Name(), err)
			}
		}
		if validate {
			if err := s.Validate(); err != nil {
				return fmt.Errorf("%s: invalid schedule: %w", a.Name(), err)
			}
		}
		res, err := metrics.Evaluate(a.Name(), s)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.4f\t%.4f\t%.4f\t%d\n",
			res.Algorithm, res.Makespan, res.SLR, res.Speedup, res.Efficiency, res.Duplicates)
		if gantt {
			tw.Flush()
			if err := s.WriteGantt(out, width); err != nil {
				return err
			}
		}
		if analyze {
			tw.Flush()
			an, err := s.Analyze()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s analysis:\n%s", a.Name(), an.String())
			slack, err := s.ComputeSlack()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "slack: total %.4g across %d tasks, %d critical\n",
				slack.TotalSlack, len(slack.Slack), len(slack.Critical))
		}
		if svgPath != "" {
			cfg := viz.GanttConfig{Title: fmt.Sprintf("%s — makespan %.4g", a.Name(), s.Makespan())}
			err := writeFile(perAlgPath(svgPath, a.Name(), len(algos) > 1), func(w io.Writer) error {
				return viz.WriteGanttSVG(w, s, cfg)
			})
			if err != nil {
				return err
			}
		}
		if outPath != "" {
			err := writeFile(perAlgPath(outPath, a.Name(), len(algos) > 1), func(w io.Writer) error {
				return s.WriteScheduleJSON(w, a.Name())
			})
			if err != nil {
				return err
			}
		}
	}
	return tw.Flush()
}

// perAlgPath suffixes path with the algorithm name when several schedules
// are written.
func perAlgPath(path, alg string, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + strings.ToLower(alg) + ext
}

// writeFile creates path and streams render into it.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printCriticalPath reports the minimum-execution-cost critical path (the
// SLR denominator of Eq. 10).
func printCriticalPath(out io.Writer, pr *sched.Problem) error {
	node := func(t dag.TaskID) float64 {
		m, _ := pr.W.Min(int(t))
		return m
	}
	path, total, err := pr.G.CriticalPath(node, dag.ZeroEdges)
	if err != nil {
		return err
	}
	names := make([]string, len(path))
	for i, t := range path {
		if n := pr.G.Task(t).Name; n != "" {
			names[i] = n
		} else {
			names[i] = fmt.Sprintf("T%d", int(t)+1)
		}
	}
	_, err = fmt.Fprintf(out, "critical path (min costs): %s - lower bound %.6g\n",
		strings.Join(names, " -> "), total)
	return err
}

func printTrace(out io.Writer, steps []core.Step) {
	fmt.Fprintln(out, "HDLTS trace:")
	for i, st := range steps {
		var ready []string
		for j, t := range st.Ready {
			ready = append(ready, fmt.Sprintf("T%d(pv %.1f)", t+1, st.PV[j]))
		}
		dup := ""
		if st.Duplicated {
			dup = " +dup"
		}
		fmt.Fprintf(out, "  step %d: ready {%s} -> T%d on P%d (EFT %g)%s\n",
			i+1, strings.Join(ready, " "), st.Selected+1, st.Proc+1, st.EFT[st.Proc], dup)
	}
}
