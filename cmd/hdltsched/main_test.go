package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// examplJSON renders the paper example problem to JSON for CLI input.
func exampleJSON(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := workflows.PaperExample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunSingleAlgorithmFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), "hdlts", "-", false, false, true, 60, "", "", false, false); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "problem: 10 tasks, 15 edges, 3 processors") {
		t.Fatalf("problem header missing:\n%s", s)
	}
	if !strings.Contains(s, "HDLTS") || !strings.Contains(s, "73") {
		t.Fatalf("result row missing:\n%s", s)
	}
}

func TestRunAllAlgorithmsWithGantt(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), "all", "-", true, false, true, 60, "", "", false, false); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, alg := range []string{"HDLTS", "HEFT", "CPOP", "PETS", "PEFT", "SDBATS"} {
		if !strings.Contains(s, alg) {
			t.Errorf("missing %s:\n%s", alg, s)
		}
	}
	if !strings.Contains(s, "makespan = 73") {
		t.Errorf("HDLTS Gantt missing:\n%s", s)
	}
}

func TestRunTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), "hdlts", "-", false, true, true, 60, "", "", false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "HDLTS trace:") || !strings.Contains(out.String(), "step 10") {
		t.Fatalf("trace missing:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, []byte(exampleJSON(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, nil, "heft", path, false, false, true, 60, "", "", false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "HEFT") || !strings.Contains(out.String(), "80") {
		t.Fatalf("HEFT row missing:\n%s", out.String())
	}
}

func TestRunSVGAndAnalyze(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "gantt.svg")
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), "all", "-", false, false, true, 60, svg, filepath.Join(dir, "sched.json"), true, false); err != nil {
		t.Fatal(err)
	}
	// Per-algorithm suffixing with -alg all.
	data, err := os.ReadFile(filepath.Join(dir, "gantt-hdlts.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("SVG content malformed")
	}
	if !strings.Contains(out.String(), "analysis:") || !strings.Contains(out.String(), "utilization") {
		t.Fatalf("analysis output missing:\n%s", out.String())
	}
	// The exported schedule JSON must reconstruct and re-validate.
	f, err := os.Open(filepath.Join(dir, "sched-hdlts.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, algName, err := sched.ReadScheduleJSON(workflows.PaperExample(), f)
	if err != nil {
		t.Fatal(err)
	}
	if algName != "HDLTS" || s.Makespan() != 73 {
		t.Fatalf("reconstructed %s schedule with makespan %g", algName, s.Makespan())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader("{"), "hdlts", "-", false, false, true, 60, "", "", false, false); err == nil {
		t.Error("garbage input accepted")
	}
	if err := run(&out, strings.NewReader(exampleJSON(t)), "nosuch", "-", false, false, true, 60, "", "", false, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&out, nil, "hdlts", "/does/not/exist.json", false, false, true, 60, "", "", false, false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunCriticalPath(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), "hdlts", "-", false, false, true, 60, "", "", false, true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "critical path (min costs):") || !strings.Contains(s, "lower bound") {
		t.Fatalf("critical-path output missing:\n%s", s)
	}
	// The Fig. 1 min-cost CP is T1 -> T2 -> T9 -> T10.
	if !strings.Contains(s, "T1 -> T2 -> T9 -> T10") {
		t.Fatalf("unexpected critical path:\n%s", s)
	}
}
