package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// examplJSON renders the paper example problem to JSON for CLI input.
func exampleJSON(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := workflows.PaperExample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunSingleAlgorithmFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "hdlts", In: "-", Validate: true, Width: 60}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "problem: 10 tasks, 15 edges, 3 processors") {
		t.Fatalf("problem header missing:\n%s", s)
	}
	if !strings.Contains(s, "HDLTS") || !strings.Contains(s, "73") {
		t.Fatalf("result row missing:\n%s", s)
	}
}

// TestRunExplainDeterministic pins the CI acceptance check: -explain on
// the Fig. 1 problem produces a full report and is byte-identical across
// runs.
func TestRunExplainDeterministic(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "hdlts", In: "-", Explain: true, Validate: true, Width: 60}); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := render()
	for _, want := range []string{`"algorithm": "HDLTS"`, `"critical_path"`, `"rationale"`, `"itq"`, `"utilization"`} {
		if !strings.Contains(first, want) {
			t.Errorf("explain output missing %s:\n%s", want, first)
		}
	}
	if second := render(); first != second {
		t.Error("-explain output differs across identical runs")
	}
	// Algorithms without a capture hook still report structure.
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "heft", In: "-", Explain: true, Validate: true, Width: 60}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"critical_path"`) || strings.Contains(out.String(), `"rationale"`) {
		t.Errorf("heft explain wrong shape:\n%s", out.String())
	}
}

func TestRunAllAlgorithmsWithGantt(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "all", In: "-", Gantt: true, Validate: true, Width: 60}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, alg := range []string{"HDLTS", "HEFT", "CPOP", "PETS", "PEFT", "SDBATS"} {
		if !strings.Contains(s, alg) {
			t.Errorf("missing %s:\n%s", alg, s)
		}
	}
	if !strings.Contains(s, "makespan = 73") {
		t.Errorf("HDLTS Gantt missing:\n%s", s)
	}
}

func TestRunTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "hdlts", In: "-", Trace: true, Validate: true, Width: 60}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "HDLTS trace:") || !strings.Contains(out.String(), "step 10") {
		t.Fatalf("trace missing:\n%s", out.String())
	}
}

// TestRunTraceUnsupportedAlgorithm checks the guard: -trace with an
// algorithm that has no decision trace must fail up front, and the error
// must name which algorithms do support it.
func TestRunTraceUnsupportedAlgorithm(t *testing.T) {
	for _, alg := range []string{"heft", "cpop", "pets", "peft", "sdbats"} {
		var out bytes.Buffer
		err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: alg, In: "-", Trace: true, Validate: true, Width: 60})
		if err == nil {
			t.Fatalf("-trace -alg %s accepted", alg)
		}
		if !strings.Contains(err.Error(), "hdlts") || !strings.Contains(err.Error(), alg) {
			t.Errorf("-trace -alg %s error does not name the supported algorithms and the offender: %v", alg, err)
		}
	}
	// -alg all includes HDLTS, so -trace stays legal there.
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "all", In: "-", Trace: true, Validate: true, Width: 60}); err != nil {
		t.Fatalf("-trace -alg all rejected: %v", err)
	}
	if !strings.Contains(out.String(), "HDLTS trace:") {
		t.Fatalf("-trace -alg all did not print the HDLTS trace:\n%s", out.String())
	}
}

// TestRunEventsJSONL checks the -events sink: one JSON object per line,
// algorithm-stamped, covering every configured algorithm.
func TestRunEventsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "all", In: "-", Validate: true, Width: 60, Events: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("no events written")
	}
	algs := map[string]bool{}
	for i, ln := range lines {
		var ev struct {
			Seq int    `json:"seq"`
			Ev  string `json:"ev"`
			Alg string `json:"alg"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, ln)
		}
		if ev.Seq != i+1 {
			t.Fatalf("line %d has seq %d", i+1, ev.Seq)
		}
		algs[ev.Alg] = true
	}
	// HDLTS emits the full decision stream; baselines at least phase-free
	// commit events via the shared estimator.
	for _, alg := range []string{"HDLTS", "HEFT", "CPOP", "PETS", "PEFT", "SDBATS"} {
		if !algs[alg] {
			t.Errorf("no events stamped %s (saw %v)", alg, algs)
		}
	}
}

// TestRunChromeTraceAcceptance is the issue's acceptance check: hdltsched
// -alg all -chrome-trace on the Fig. 1 example must emit valid Chrome
// trace-event JSON whose HDLTS process track shows the schedule ending at
// makespan 73.
func TestRunChromeTraceAcceptance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "all", In: "-", Validate: true, Width: 60, ChromeTrace: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	// Find the HDLTS process id from its process_name metadata record.
	hdltsPID := -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if name, _ := ev.Args["name"].(string); name == "HDLTS" {
				hdltsPID = ev.PID
			}
		}
	}
	if hdltsPID < 0 {
		t.Fatal("no HDLTS process track in the chrome trace")
	}
	// The latest span end on the HDLTS track is the makespan: 73 sim units
	// = 73 000 µs at the default 1 ms scale.
	maxEnd := 0.0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.PID == hdltsPID {
			if end := ev.TS + ev.Dur; end > maxEnd {
				maxEnd = end
			}
		}
	}
	if maxEnd != 73000 {
		t.Fatalf("HDLTS track ends at %g µs, want 73000 (makespan 73)", maxEnd)
	}
}

// TestRunStats checks that -stats dumps the Prometheus-text registry to the
// error stream, not stdout.
func TestRunStats(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "hdlts", In: "-", Validate: true, Width: 60, Stats: true, Err: &errOut}); err != nil {
		t.Fatal(err)
	}
	s := errOut.String()
	if !strings.Contains(s, "hdlts_sched_commits_total") || !strings.Contains(s, "hdlts_iterations_total") {
		t.Fatalf("-stats output missing counters:\n%s", s)
	}
	if strings.Contains(out.String(), "hdlts_sched_commits_total") {
		t.Fatal("-stats leaked into stdout")
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, []byte(exampleJSON(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, nil, options{Alg: "heft", In: path, Validate: true, Width: 60}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "HEFT") || !strings.Contains(out.String(), "80") {
		t.Fatalf("HEFT row missing:\n%s", out.String())
	}
}

func TestRunSVGAndAnalyze(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "gantt.svg")
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "all", In: "-", Validate: true, Width: 60, SVG: svg, OutJSON: filepath.Join(dir, "sched.json"), Analyze: true}); err != nil {
		t.Fatal(err)
	}
	// Per-algorithm suffixing with -alg all.
	data, err := os.ReadFile(filepath.Join(dir, "gantt-hdlts.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("SVG content malformed")
	}
	if !strings.Contains(out.String(), "analysis:") || !strings.Contains(out.String(), "utilization") {
		t.Fatalf("analysis output missing:\n%s", out.String())
	}
	// The exported schedule JSON must reconstruct and re-validate.
	f, err := os.Open(filepath.Join(dir, "sched-hdlts.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, algName, err := sched.ReadScheduleJSON(workflows.PaperExample(), f)
	if err != nil {
		t.Fatal(err)
	}
	if algName != "HDLTS" || s.Makespan() != 73 {
		t.Fatalf("reconstructed %s schedule with makespan %g", algName, s.Makespan())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader("{"), options{Alg: "hdlts", In: "-", Validate: true, Width: 60}); err == nil {
		t.Error("garbage input accepted")
	}
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "nosuch", In: "-", Validate: true, Width: 60}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&out, nil, options{Alg: "hdlts", In: "/does/not/exist.json", Validate: true, Width: 60}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunCriticalPath(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(exampleJSON(t)), options{Alg: "hdlts", In: "-", Validate: true, Width: 60, CP: true}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "critical path (min costs):") || !strings.Contains(s, "lower bound") {
		t.Fatalf("critical-path output missing:\n%s", s)
	}
	// The Fig. 1 min-cost CP is T1 -> T2 -> T9 -> T10.
	if !strings.Contains(s, "T1 -> T2 -> T9 -> T10") {
		t.Fatalf("unexpected critical path:\n%s", s)
	}
}
