package main

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestSweepSlice(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2, 1, 0, 5, 1, 500, "hdlts,heft", 2, "canonical"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+5 {
		t.Fatalf("rows = %d, want 6 (header + 5 combos)", len(recs))
	}
	if got := strings.Join(recs[0], ","); got != "v,alpha,density,ccr,procs,wdag,beta,reps,slr_hdlts,slr_heft" {
		t.Fatalf("header = %s", got)
	}
	for _, rec := range recs[1:] {
		if rec[0] != "100" { // the first combinations all have V = 100
			t.Fatalf("unexpected V %s in first slice", rec[0])
		}
		for _, col := range rec[8:] {
			if !strings.ContainsAny(col, "0123456789") {
				t.Fatalf("non-numeric SLR %q", col)
			}
		}
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, 1, 7, 10, 4, 3, 500, "hdlts", 1, "canonical"); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 1, 7, 10, 4, 3, 500, "hdlts", 4, "canonical"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("sweep output depends on worker count")
	}
}

func TestSweepShardsPartitionTheGrid(t *testing.T) {
	var whole, p1, p2 bytes.Buffer
	if err := run(&whole, 1, 3, 0, 6, 1, 500, "hdlts", 2, "canonical"); err != nil {
		t.Fatal(err)
	}
	if err := run(&p1, 1, 3, 0, 3, 1, 500, "hdlts", 2, "canonical"); err != nil {
		t.Fatal(err)
	}
	if err := run(&p2, 1, 3, 3, 3, 1, 500, "hdlts", 2, "canonical"); err != nil {
		t.Fatal(err)
	}
	wl := strings.Split(strings.TrimSpace(whole.String()), "\n")
	l1 := strings.Split(strings.TrimSpace(p1.String()), "\n")
	l2 := strings.Split(strings.TrimSpace(p2.String()), "\n")
	recombined := append(append([]string{}, l1...), l2[1:]...) // drop p2 header
	if len(recombined) != len(wl) {
		t.Fatalf("shard row counts: %d + %d vs %d", len(l1)-1, len(l2)-1, len(wl)-1)
	}
	for i := range wl {
		if wl[i] != recombined[i] {
			t.Fatalf("shards diverge at row %d:\n%s\n%s", i, wl[i], recombined[i])
		}
	}
}

func TestSweepMaxVFilter(t *testing.T) {
	var buf bytes.Buffer
	// maxv 100 keeps only V=100 combos; take a stride crossing V groups.
	if err := run(&buf, 1, 1, 0, 10, 5000, 100, "hdlts", 2, "canonical"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[1:] {
		if rec[0] != "100" {
			t.Fatalf("maxv filter leaked V = %s", rec[0])
		}
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, 1, 0, 1, 1, 0, "hdlts", 1, "canonical"); err == nil {
		t.Error("zero reps accepted")
	}
	if err := run(&buf, 1, 1, 0, 1, 1, 0, "nosuch", 1, "canonical"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&buf, 1, 1, 0, 1, 1, 0, "hdlts", 1, "weird"); err == nil {
		t.Error("unknown mode accepted")
	}
}
