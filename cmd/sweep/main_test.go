package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSweepSlice(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Reps: 2, Seed: 1, Limit: 5, Stride: 1, MaxV: 500, Algs: "hdlts,heft", Workers: 2, Mode: "canonical"}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+5 {
		t.Fatalf("rows = %d, want 6 (header + 5 combos)", len(recs))
	}
	if got := strings.Join(recs[0], ","); got != "v,alpha,density,ccr,procs,wdag,beta,reps,slr_hdlts,slr_heft" {
		t.Fatalf("header = %s", got)
	}
	for _, rec := range recs[1:] {
		if rec[0] != "100" { // the first combinations all have V = 100
			t.Fatalf("unexpected V %s in first slice", rec[0])
		}
		for _, col := range rec[8:] {
			if !strings.ContainsAny(col, "0123456789") {
				t.Fatalf("non-numeric SLR %q", col)
			}
		}
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, options{Reps: 1, Seed: 7, Offset: 10, Limit: 4, Stride: 3, MaxV: 500, Algs: "hdlts", Workers: 1, Mode: "canonical"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, options{Reps: 1, Seed: 7, Offset: 10, Limit: 4, Stride: 3, MaxV: 500, Algs: "hdlts", Workers: 4, Mode: "canonical"}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("sweep output depends on worker count")
	}
}

func TestSweepShardsPartitionTheGrid(t *testing.T) {
	var whole, p1, p2 bytes.Buffer
	if err := run(&whole, options{Reps: 1, Seed: 3, Limit: 6, Stride: 1, MaxV: 500, Algs: "hdlts", Workers: 2, Mode: "canonical"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&p1, options{Reps: 1, Seed: 3, Limit: 3, Stride: 1, MaxV: 500, Algs: "hdlts", Workers: 2, Mode: "canonical"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&p2, options{Reps: 1, Seed: 3, Offset: 3, Limit: 3, Stride: 1, MaxV: 500, Algs: "hdlts", Workers: 2, Mode: "canonical"}); err != nil {
		t.Fatal(err)
	}
	wl := strings.Split(strings.TrimSpace(whole.String()), "\n")
	l1 := strings.Split(strings.TrimSpace(p1.String()), "\n")
	l2 := strings.Split(strings.TrimSpace(p2.String()), "\n")
	recombined := append(append([]string{}, l1...), l2[1:]...) // drop p2 header
	if len(recombined) != len(wl) {
		t.Fatalf("shard row counts: %d + %d vs %d", len(l1)-1, len(l2)-1, len(wl)-1)
	}
	for i := range wl {
		if wl[i] != recombined[i] {
			t.Fatalf("shards diverge at row %d:\n%s\n%s", i, wl[i], recombined[i])
		}
	}
}

func TestSweepMaxVFilter(t *testing.T) {
	var buf bytes.Buffer
	// maxv 100 keeps only V=100 combos; take a stride crossing V groups.
	if err := run(&buf, options{Reps: 1, Seed: 1, Limit: 10, Stride: 5000, MaxV: 100, Algs: "hdlts", Workers: 2, Mode: "canonical"}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[1:] {
		if rec[0] != "100" {
			t.Fatalf("maxv filter leaked V = %s", rec[0])
		}
	}
}

// TestSweepEventsAndStats checks the -events JSONL sink and the -stats
// registry dump on a tiny slice.
func TestSweepEventsAndStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	var buf, errBuf bytes.Buffer
	o := options{Reps: 1, Seed: 1, Limit: 2, Stride: 1, MaxV: 500, Algs: "hdlts,heft",
		Workers: 1, Mode: "canonical", Events: path, Stats: true, Err: &errBuf}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("no events written")
	}
	algs := map[string]bool{}
	for i, ln := range lines {
		var ev struct {
			Alg string `json:"alg"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, ln)
		}
		algs[ev.Alg] = true
	}
	if !algs["HDLTS"] || !algs["HEFT"] {
		t.Fatalf("events missing algorithm stamps: %v", algs)
	}
	if !strings.Contains(errBuf.String(), "hdlts_sched_commits_total") {
		t.Fatalf("-stats output missing counters:\n%s", errBuf.String())
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Seed: 1, Limit: 1, Stride: 1, Algs: "hdlts", Workers: 1, Mode: "canonical"}); err == nil {
		t.Error("zero reps accepted")
	}
	if err := run(&buf, options{Reps: 1, Seed: 1, Limit: 1, Stride: 1, Algs: "nosuch", Workers: 1, Mode: "canonical"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&buf, options{Reps: 1, Seed: 1, Limit: 1, Stride: 1, Algs: "hdlts", Workers: 1, Mode: "weird"}); err == nil {
		t.Error("unknown mode accepted")
	}
}
