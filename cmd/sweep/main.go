// Command sweep runs the full-factorial Table II campaign the paper
// describes (150 000 parameter combinations × repeated random graphs),
// streaming one CSV row per combination with each algorithm's mean SLR.
// Because the full grid at paper scale is a multi-hour run, the sweep is
// sliceable and filterable; slices are deterministic, so a campaign can be
// spread across invocations or machines and concatenated.
//
//	sweep -reps 3 -maxv 500 -stride 100 > sweep.csv     # every 100th combo
//	sweep -offset 0 -limit 2000 -reps 5 > part1.csv     # shard 1
//	sweep -offset 2000 -limit 2000 -reps 5 > part2.csv  # shard 2
//	sweep -limit 50 -events ev.jsonl -stats > head.csv  # with observability
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"hdlts/internal/gen"
	"hdlts/internal/metrics"
	"hdlts/internal/obs"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
)

// options collects every CLI knob; tests drive run directly with one.
type options struct {
	Reps    int
	Seed    int64
	Offset  int
	Limit   int
	Stride  int
	MaxV    int
	Algs    string
	Workers int
	Mode    string
	// Events streams decision events as JSON Lines to this file (use
	// -workers 1 for a reproducible stream).
	Events string
	// Stats dumps the runtime metrics registry (Prometheus text) to Err
	// after the sweep.
	Stats bool
	// Err receives -stats output (defaults to os.Stderr).
	Err io.Writer
}

func main() {
	var o options
	flag.IntVar(&o.Reps, "reps", 3, "random graphs per parameter combination")
	flag.Int64Var(&o.Seed, "seed", 1, "campaign seed")
	flag.IntVar(&o.Offset, "offset", 0, "skip the first N combinations")
	flag.IntVar(&o.Limit, "limit", 1000, "process at most N combinations (0 = all)")
	flag.IntVar(&o.Stride, "stride", 1, "take every Nth combination")
	flag.IntVar(&o.MaxV, "maxv", 1000, "skip combinations with more than N tasks (0 = no cap)")
	flag.StringVar(&o.Algs, "algs", "hdlts,heft,sdbats", "comma-separated algorithms")
	flag.IntVar(&o.Workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.StringVar(&o.Mode, "mode", "canonical", "baseline mode: canonical | paper")
	flag.StringVar(&o.Events, "events", "", "write decision events as JSON Lines to this file (-workers 1 for a stable order)")
	flag.BoolVar(&o.Stats, "stats", false, "print runtime metrics (Prometheus text) to stderr")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, o options) error {
	if o.Err == nil {
		o.Err = os.Stderr
	}
	if o.Reps < 1 || o.Stride < 1 || o.Offset < 0 {
		return fmt.Errorf("invalid slicing: reps %d, stride %d, offset %d", o.Reps, o.Stride, o.Offset)
	}
	var pool []sched.Algorithm
	switch o.Mode {
	case "canonical":
		pool = registry.All()
	case "paper":
		pool = registry.PaperMode()
	default:
		return fmt.Errorf("unknown -mode %q", o.Mode)
	}
	keep := map[string]bool{}
	for _, a := range strings.Split(o.Algs, ",") {
		keep[strings.ToLower(strings.TrimSpace(a))] = true
	}
	var algos []sched.Algorithm
	for _, a := range pool {
		if keep[strings.ToLower(a.Name())] {
			algos = append(algos, a)
		}
	}
	if len(algos) == 0 {
		return fmt.Errorf("-algs %q selected no algorithms", o.Algs)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var tracer obs.Tracer = obs.Nop
	var jsonl *obs.JSONLSink
	if o.Events != "" {
		f, err := os.Create(o.Events)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = obs.NewJSONL(f)
		tracer = jsonl
	}

	// Collect the selected combination slice deterministically.
	var combos []gen.Params
	idx, taken := 0, 0
	gen.TableII().ForEach(func(p gen.Params) bool {
		if o.MaxV > 0 && p.V > o.MaxV {
			return true
		}
		if idx >= o.Offset && (idx-o.Offset)%o.Stride == 0 {
			combos = append(combos, p)
			taken++
			if o.Limit > 0 && taken >= o.Limit {
				return false
			}
		}
		idx++
		return true
	})

	cw := csv.NewWriter(out)
	header := []string{"v", "alpha", "density", "ccr", "procs", "wdag", "beta", "reps"}
	for _, a := range algos {
		header = append(header, "slr_"+strings.ToLower(a.Name()))
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	rows := make([][]string, len(combos))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				row, err := sweepOne(combos[ci], algos, o.Reps, o.Seed, tracer)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				rows[ci] = row
			}
		}()
	}
	for ci := range combos {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			return fmt.Errorf("writing %s: %w", o.Events, err)
		}
	}
	if o.Stats {
		if err := obs.Default().WritePrometheus(o.Err); err != nil {
			return err
		}
	}
	return nil
}

// sweepOne evaluates one parameter combination: reps random graphs, every
// algorithm on each, mean SLR per algorithm.
func sweepOne(p gen.Params, algos []sched.Algorithm, reps int, seed int64, tracer obs.Tracer) ([]string, error) {
	acc := make([]stats.Running, len(algos))
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(comboSeed(seed, p, rep)))
		pr, err := gen.Random(p, rng)
		if err != nil {
			return nil, err
		}
		for ai, alg := range algos {
			prA := pr
			if tracer.Enabled() {
				prA = pr.WithTracer(obs.Named(tracer, alg.Name()))
			}
			s, err := alg.Schedule(prA)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", alg.Name(), p, err)
			}
			slr, err := metrics.SLR(s.Problem(), s.Makespan())
			if err != nil {
				return nil, err
			}
			acc[ai].Add(slr)
		}
	}
	row := []string{
		strconv.Itoa(p.V),
		strconv.FormatFloat(p.Alpha, 'g', -1, 64),
		strconv.Itoa(p.Density),
		strconv.FormatFloat(p.CCR, 'g', -1, 64),
		strconv.Itoa(p.Procs),
		strconv.FormatFloat(p.WDAG, 'g', -1, 64),
		strconv.FormatFloat(p.Beta, 'g', -1, 64),
		strconv.Itoa(reps),
	}
	for _, a := range acc {
		row = append(row, strconv.FormatFloat(a.Mean(), 'g', 6, 64))
	}
	return row, nil
}

// comboSeed derives a deterministic seed per (combination, repetition).
func comboSeed(seed int64, p gen.Params, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, p, rep)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
