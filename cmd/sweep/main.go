// Command sweep runs the full-factorial Table II campaign the paper
// describes (150 000 parameter combinations × repeated random graphs),
// streaming one CSV row per combination with each algorithm's mean SLR.
// Because the full grid at paper scale is a multi-hour run, the sweep is
// sliceable and filterable; slices are deterministic, so a campaign can be
// spread across invocations or machines and concatenated.
//
//	sweep -reps 3 -maxv 500 -stride 100 > sweep.csv     # every 100th combo
//	sweep -offset 0 -limit 2000 -reps 5 > part1.csv     # shard 1
//	sweep -offset 2000 -limit 2000 -reps 5 > part2.csv  # shard 2
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"hdlts/internal/gen"
	"hdlts/internal/metrics"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
)

func main() {
	var (
		reps    = flag.Int("reps", 3, "random graphs per parameter combination")
		seed    = flag.Int64("seed", 1, "campaign seed")
		offset  = flag.Int("offset", 0, "skip the first N combinations")
		limit   = flag.Int("limit", 1000, "process at most N combinations (0 = all)")
		stride  = flag.Int("stride", 1, "take every Nth combination")
		maxv    = flag.Int("maxv", 1000, "skip combinations with more than N tasks (0 = no cap)")
		algs    = flag.String("algs", "hdlts,heft,sdbats", "comma-separated algorithms")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		mode    = flag.String("mode", "canonical", "baseline mode: canonical | paper")
	)
	flag.Parse()
	if err := run(os.Stdout, *reps, *seed, *offset, *limit, *stride, *maxv, *algs, *workers, *mode); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, reps int, seed int64, offset, limit, stride, maxv int, algNames string, workers int, mode string) error {
	if reps < 1 || stride < 1 || offset < 0 {
		return fmt.Errorf("invalid slicing: reps %d, stride %d, offset %d", reps, stride, offset)
	}
	var pool []sched.Algorithm
	switch mode {
	case "canonical":
		pool = registry.All()
	case "paper":
		pool = registry.PaperMode()
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	keep := map[string]bool{}
	for _, a := range strings.Split(algNames, ",") {
		keep[strings.ToLower(strings.TrimSpace(a))] = true
	}
	var algos []sched.Algorithm
	for _, a := range pool {
		if keep[strings.ToLower(a.Name())] {
			algos = append(algos, a)
		}
	}
	if len(algos) == 0 {
		return fmt.Errorf("-algs %q selected no algorithms", algNames)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Collect the selected combination slice deterministically.
	var combos []gen.Params
	idx, taken := 0, 0
	gen.TableII().ForEach(func(p gen.Params) bool {
		if maxv > 0 && p.V > maxv {
			return true
		}
		if idx >= offset && (idx-offset)%stride == 0 {
			combos = append(combos, p)
			taken++
			if limit > 0 && taken >= limit {
				return false
			}
		}
		idx++
		return true
	})

	cw := csv.NewWriter(out)
	header := []string{"v", "alpha", "density", "ccr", "procs", "wdag", "beta", "reps"}
	for _, a := range algos {
		header = append(header, "slr_"+strings.ToLower(a.Name()))
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	rows := make([][]string, len(combos))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				row, err := sweepOne(combos[ci], algos, reps, seed)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				rows[ci] = row
			}
		}()
	}
	for ci := range combos {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sweepOne evaluates one parameter combination: reps random graphs, every
// algorithm on each, mean SLR per algorithm.
func sweepOne(p gen.Params, algos []sched.Algorithm, reps int, seed int64) ([]string, error) {
	acc := make([]stats.Running, len(algos))
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(comboSeed(seed, p, rep)))
		pr, err := gen.Random(p, rng)
		if err != nil {
			return nil, err
		}
		for ai, alg := range algos {
			s, err := alg.Schedule(pr)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", alg.Name(), p, err)
			}
			slr, err := metrics.SLR(s.Problem(), s.Makespan())
			if err != nil {
				return nil, err
			}
			acc[ai].Add(slr)
		}
	}
	row := []string{
		strconv.Itoa(p.V),
		strconv.FormatFloat(p.Alpha, 'g', -1, 64),
		strconv.Itoa(p.Density),
		strconv.FormatFloat(p.CCR, 'g', -1, 64),
		strconv.Itoa(p.Procs),
		strconv.FormatFloat(p.WDAG, 'g', -1, 64),
		strconv.FormatFloat(p.Beta, 'g', -1, 64),
		strconv.Itoa(reps),
	}
	for _, a := range acc {
		row = append(row, strconv.FormatFloat(a.Mean(), 'g', 6, 64))
	}
	return row, nil
}

// comboSeed derives a deterministic seed per (combination, repetition).
func comboSeed(seed int64, p gen.Params, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, p, rep)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
