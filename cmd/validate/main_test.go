package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdlts/internal/core"
	"hdlts/internal/workflows"
)

// writeFixtures materialises the paper-example problem and its HDLTS
// schedule as JSON files.
func writeFixtures(t *testing.T) (problem, schedule string) {
	t.Helper()
	dir := t.TempDir()
	pr := workflows.PaperExample()

	problem = filepath.Join(dir, "p.json")
	pf, err := os.Create(problem)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.WriteJSON(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	s, err := core.New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	schedule = filepath.Join(dir, "s.json")
	sf, err := os.Create(schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteScheduleJSON(sf, "HDLTS"); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	return problem, schedule
}

func TestValidateHappyPath(t *testing.T) {
	p, s := writeFixtures(t)
	var out bytes.Buffer
	if err := run(&out, p, s, true); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"VALID: HDLTS", "makespan 73", "duplicates 2", "compacted makespan 73", "recovered 0"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	p, s := writeFixtures(t)
	raw, err := os.ReadFile(s)
	if err != nil {
		t.Fatal(err)
	}
	// Shift one start time: makespan consistency or overlap must fail.
	corrupted := strings.Replace(string(raw), `"start": 66`, `"start": 60`, 1)
	if corrupted == string(raw) {
		t.Fatal("fixture did not contain the expected placement")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, p, bad, false); err == nil {
		t.Fatal("corrupted schedule validated")
	}
}

func TestValidateArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", "", false); err == nil {
		t.Error("missing args accepted")
	}
	if err := run(&out, "/nope.json", "/nope2.json", false); err == nil {
		t.Error("missing files accepted")
	}
}
