// Command validate checks a (problem, schedule) JSON pair — as produced by
// cmd/dagen and cmd/hdltsched -out — against the library's feasibility
// rules: complete coverage, no processor overlap, precedence with
// communication for every task copy. On success it prints the schedule's
// metrics and analysis; on failure it exits non-zero with the violation.
//
//	dagen -kind fft -m 8 > p.json
//	hdltsched -in p.json -alg hdlts -out s.json
//	validate -problem p.json -schedule s.json
//
// A -compact flag additionally re-times the schedule as early as possible
// and reports the recovered slack (zero for schedules that are already
// tight).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hdlts/internal/metrics"
	"hdlts/internal/obs"
	"hdlts/internal/sched"
)

func main() {
	var (
		problem  = flag.String("problem", "", "problem JSON file (required)")
		schedule = flag.String("schedule", "", "schedule JSON file (required)")
		compact  = flag.Bool("compact", false, "also compact the schedule and report recovered slack")
		stats    = flag.Bool("stats", false, "print runtime metrics (validation timing) to stderr")
	)
	flag.Parse()
	if err := run(os.Stdout, *problem, *schedule, *compact); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	if *stats {
		if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "validate:", err)
			os.Exit(1)
		}
	}
}

func run(out io.Writer, problemPath, schedulePath string, compact bool) error {
	if problemPath == "" || schedulePath == "" {
		return fmt.Errorf("both -problem and -schedule are required")
	}
	pr, err := readProblem(problemPath)
	if err != nil {
		return fmt.Errorf("problem: %w", err)
	}
	sf, err := os.Open(schedulePath)
	if err != nil {
		return err
	}
	defer sf.Close()

	// Schedules may reference the normalised problem (pseudo tasks), so try
	// the raw problem first and fall back to its normalisation.
	s, alg, err := sched.ReadScheduleJSON(pr, restartable(sf))
	if err != nil {
		if _, seekErr := sf.Seek(0, io.SeekStart); seekErr != nil {
			return seekErr
		}
		var err2 error
		s, alg, err2 = sched.ReadScheduleJSON(pr.Normalize(), sf)
		if err2 != nil {
			return fmt.Errorf("schedule does not fit the problem (raw: %v; normalised: %w)", err, err2)
		}
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("INVALID: %w", err)
	}

	if alg == "" {
		alg = "schedule"
	}
	res, err := metrics.Evaluate(alg, s)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "VALID: %s on %d tasks / %d processors\n", alg, pr.NumTasks(), pr.NumProcs())
	fmt.Fprintf(out, "makespan %.6g  SLR %.4f  speedup %.4f  efficiency %.4f  duplicates %d\n",
		res.Makespan, res.SLR, res.Speedup, res.Efficiency, res.Duplicates)
	a, err := s.Analyze()
	if err != nil {
		return err
	}
	fmt.Fprint(out, a.String())

	if compact {
		c, err := s.Compact()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "compacted makespan %.6g (recovered %.6g)\n",
			c.Makespan(), s.Makespan()-c.Makespan())
	}
	return nil
}

// readProblem loads a problem JSON file.
func readProblem(path string) (*sched.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sched.ReadProblemJSON(f)
}

// restartable wraps the reader so the first decode attempt does not consume
// the underlying file handle irrecoverably (os.File supports seeking; this
// indirection keeps run testable with plain readers too).
func restartable(f *os.File) io.Reader { return f }
