// Command hdltsrun executes a declarative YAML workflow locally: plan with
// HDLTS, run the step commands on bounded processor slots, re-map the
// remaining steps when observed durations drift from their estimates, and
// report what the dynamic mapping changed.
//
//	hdltsrun workflow.yaml
//	dagen -kind montage -n 50 -format workflow | hdltsrun -
//	hdltsrun -json workflow.yaml | jq .observed_w
//
// The same YAML posts unchanged to a daemon's POST /v1/workflows when the
// run should be durable and observable over HTTP; hdltsrun is the
// in-process, memory-only equivalent. See docs/EXECUTION.md for the schema
// and the re-planning semantics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdlts/internal/exec"
	"hdlts/internal/obs"
)

func main() {
	var (
		drift   = flag.Float64("drift", 0, "override the workflow's re-plan threshold ratio (> 1; 0 = use the definition's)")
		jsonOut = flag.Bool("json", false, "emit the final workflow record as JSON instead of the table")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
		follow  = flag.Bool("follow", false, "stream step/re-plan events live to stderr while the workflow runs")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hdltsrun [-drift N] [-json] [-follow] [-timeout D] <workflow.yaml | ->")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, os.Stdout, os.Stderr, flag.Arg(0), *drift, *jsonOut, *follow); err != nil {
		fmt.Fprintln(os.Stderr, "hdltsrun:", err)
		os.Exit(1)
	}
}

// run loads, plans, and executes one workflow, rendering the outcome to
// out (and, with follow, the live event feed to errOut). A non-done
// terminal state is an error so the exit code reflects the workflow
// result.
func run(ctx context.Context, out, errOut io.Writer, path string, drift float64, jsonOut, follow bool) error {
	src, err := readSource(path)
	if err != nil {
		return err
	}
	wf, err := exec.DecodeWorkflow(src)
	if err != nil {
		return err
	}
	if drift != 0 {
		wf.Drift = drift
		if err := wf.Validate(); err != nil {
			return err
		}
	}
	cfg := exec.Config{} // memory-only, shell runner
	var hub *obs.Hub
	if follow {
		hub = obs.NewHub(obs.NewRegistry(), 0)
		cfg.Stream = hub
	}
	eng, err := exec.Open(cfg)
	if err != nil {
		return err
	}
	defer func() {
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Close(cctx)
	}()

	// Subscribe before Submit so the feed starts at workflow.plan.
	followed := make(chan struct{})
	if follow {
		sub := hub.Subscribe(obs.StreamFilter{}, 1024)
		defer sub.Close()
		go func() {
			defer close(followed)
			for ev := range sub.C() {
				printEvent(errOut, ev)
				if ev.Kind == obs.KindWorkflowDone {
					return
				}
			}
		}()
	} else {
		close(followed)
	}

	rec, err := eng.Submit(ctx, wf)
	if err != nil {
		return err
	}
	final, err := eng.Wait(ctx, rec.ID)
	if err != nil {
		// Interrupted: cancel the run so step commands die, then report.
		if final, err = eng.Cancel(rec.ID); err != nil {
			return err
		}
	}
	// Let the feed drain through workflow.done before the summary prints.
	select {
	case <-followed:
	case <-time.After(2 * time.Second):
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(final); err != nil {
			return err
		}
	} else {
		render(out, final)
	}
	if final.State != exec.Done {
		return fmt.Errorf("workflow %s: %s", final.State, final.Error)
	}
	return nil
}

func readSource(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// printEvent renders one live stream event as a -follow feed line.
func printEvent(w io.Writer, ev obs.StreamEvent) {
	detail := ""
	switch ev.Kind {
	case obs.KindWorkflowPlan:
		detail = fmt.Sprintf("%d step(s) planned", int(ev.Value))
	case obs.KindStepRun:
		detail = fmt.Sprintf("%s -> P%d (queued %.3fs)", ev.Step, ev.Proc+1, ev.Value)
	case obs.KindStepDone:
		detail = fmt.Sprintf("%s on P%d (%.3fs observed)", ev.Step, ev.Proc+1, ev.Value)
	case obs.KindStepFail:
		detail = fmt.Sprintf("%s on P%d (%s)", ev.Step, ev.Proc+1, ev.Phase)
	case obs.KindWorkflowReplan:
		detail = fmt.Sprintf("%s, re-mapping %d pending step(s)", ev.Phase, int(ev.Value))
	case obs.KindWorkflowDone:
		detail = ev.Phase
	default:
		detail = ev.Step
	}
	fmt.Fprintf(w, "%9.3fs  %-16s %s\n", ev.Time, ev.Kind, detail)
}

// render prints the per-step outcome table and the dynamic-mapping summary.
func render(out io.Writer, r *exec.Record) {
	fmt.Fprintf(out, "workflow %s (%s): %s\n", r.Name, r.ID, r.State)
	fmt.Fprintf(out, "%-20s %-8s %5s %5s %9s %9s %8s\n",
		"STEP", "STATE", "PLAN", "PROC", "EST(s)", "OBS(s)", "ATTEMPTS")
	moved := 0
	for _, st := range r.Steps {
		mark := ""
		if st.Proc != st.PlannedProc {
			mark = " *"
			moved++
		}
		obs := "-"
		if st.ObservedSeconds > 0 {
			obs = fmt.Sprintf("%.3f", st.ObservedSeconds)
		}
		fmt.Fprintf(out, "%-20s %-8s %5d %5d %9.3f %9s %8d%s\n",
			st.Name, st.State, st.PlannedProc, st.Proc, st.EstSeconds, obs, st.Attempts, mark)
	}
	fmt.Fprintf(out, "makespan %.3fs, %d re-plans, %d step(s) re-mapped (*)\n",
		r.MakespanSeconds, r.Replans, moved)
	if r.Error != "" {
		fmt.Fprintf(out, "error: %s\n", r.Error)
	}
}
