package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"hdlts/internal/exec"
)

func writeWorkflow(t *testing.T, yaml string) string {
	t.Helper()
	path := t.TempDir() + "/wf.yaml"
	if err := os.WriteFile(path, []byte(yaml), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExecutesWorkflow(t *testing.T) {
	dir := t.TempDir()
	path := writeWorkflow(t, `name: clidemo
procs: 2
steps:
  - name: a
    command: echo one >> `+dir+`/out
    cost: 0.01
  - name: b
    command: echo two >> `+dir+`/out
    depends: [a]
    cost: 0.01
`)
	var out bytes.Buffer
	if err := run(context.Background(), &out, io.Discard, path, 0, false, false); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"workflow clidemo", "done", "makespan", "re-plans"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	b, err := os.ReadFile(dir + "/out")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "one\ntwo\n" {
		t.Errorf("steps ran out of order or wrong: %q", b)
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeWorkflow(t, "steps:\n  - name: a\n    command: true\n    cost: 0.01\n")
	var out bytes.Buffer
	if err := run(context.Background(), &out, io.Discard, path, 2.0, true, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rec exec.Record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatalf("output is not a Record: %v\n%s", err, out.String())
	}
	if rec.State != exec.Done || len(rec.ObservedW) != 1 {
		t.Errorf("record = %v / %d observations", rec.State, len(rec.ObservedW))
	}
	if rec.Spec.DriftThreshold() != 2.0 {
		t.Errorf("drift override = %g, want 2", rec.Spec.DriftThreshold())
	}
}

func TestRunFollowStreamsEvents(t *testing.T) {
	path := writeWorkflow(t, "steps:\n  - name: a\n    command: true\n    cost: 0.01\n")
	var out, feed bytes.Buffer
	if err := run(context.Background(), &out, &feed, path, 0, false, true); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := feed.String()
	for _, want := range []string{"workflow.plan", "step.run", "step.done", "workflow.done"} {
		if !strings.Contains(got, want) {
			t.Errorf("follow feed missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(out.String(), "done") {
		t.Errorf("summary missing:\n%s", out.String())
	}
}

func TestRunFailurePropagates(t *testing.T) {
	path := writeWorkflow(t, "steps:\n  - name: a\n    command: \"exit 7\"\n    cost: 0.01\n")
	var out bytes.Buffer
	err := run(context.Background(), &out, io.Discard, path, 0, false, false)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("run error = %v, want workflow failure", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, io.Discard, t.TempDir()+"/absent.yaml", 0, false, false); err == nil {
		t.Error("missing file accepted")
	}
	path := writeWorkflow(t, "steps:\n  - name: a\n")
	if err := run(context.Background(), &out, io.Discard, path, 0, false, false); err == nil {
		t.Error("invalid workflow accepted")
	}
	good := writeWorkflow(t, "steps:\n  - name: a\n    command: true\n")
	if err := run(context.Background(), &out, io.Discard, good, 0.5, false, false); err == nil {
		t.Error("bad drift override accepted")
	}
}

func TestRunInterrupted(t *testing.T) {
	path := writeWorkflow(t, "steps:\n  - name: stuck\n    command: sleep 60\n    cost: 60\n")
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	var out bytes.Buffer
	err := run(ctx, &out, io.Discard, path, 0, false, false)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !strings.Contains(out.String(), "cancelled") {
		t.Errorf("output does not show cancellation:\n%s", out.String())
	}
}
