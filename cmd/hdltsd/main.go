// Command hdltsd serves the scheduling library over HTTP: a long-running
// daemon that maps workflow problems to schedules on demand.
//
//	hdltsd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/schedule \
//	    -d '{"algorithm":"hdlts","problem":'"$(dagen -kind example)"'}'
//	curl -s localhost:8080/metrics          # Prometheus text
//
// POST /v1/schedule accepts {"algorithm": name, "problem": <problem JSON>,
// "trace": bool} — the problem subobject is exactly what cmd/dagen emits —
// and returns the schedule, makespan, SLR/speedup/efficiency, and
// optionally the decision-event stream. POST /v1/jobs takes the same
// problem asynchronously: poll GET /v1/jobs/{id} for the result, cancel
// with DELETE. With -jobs-dir set, jobs survive crashes and restarts via
// a write-ahead log, and identical resubmissions are answered from a
// content-addressed result cache. See docs/SERVICE.md for the full
// endpoint and schema reference.
//
// POST /v1/workflows goes one step further than planning: it accepts a
// declarative YAML workflow definition (the same file cmd/hdltsrun takes),
// plans it with HDLTS, and actually executes the step commands, re-mapping
// the remaining steps when observed durations drift from their estimates.
// With -workflows-dir set, unfinished workflows survive a crash and resume
// on restart without re-running completed steps. See docs/EXECUTION.md.
//
// Every response carries an X-Request-ID (the client's, when well-formed;
// generated otherwise) that doubles as the trace ID: the access log, the
// persisted job record, and the span/decision-event trace behind
// GET /v1/jobs/{id}/trace and GET /v1/traces/{id} all share it. Runtime
// telemetry (goroutines, heap, GC pauses, scheduler latency) is polled
// into the hdltsd_runtime_* gauges, and -debug-addr opens a separate
// localhost pprof/expvar listener. See docs/OBSERVABILITY.md.
//
// The daemon is drain-aware: SIGTERM/SIGINT flips /readyz to 503, stops
// admitting schedule requests, finishes everything in flight, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdlts/internal/exec"
	"hdlts/internal/jobs"
	"hdlts/internal/obs"
	"hdlts/internal/server"
)

// options collects every CLI knob; tests drive run directly with one.
type options struct {
	Addr         string
	Workers      int
	Queue        int
	Timeout      time.Duration
	MaxBody      int64
	DrainTimeout time.Duration
	Quiet        bool
	JobsDir      string
	JobsWorkers  int
	JobsTTL      time.Duration
	// WorkflowsDir is the durable workflow store; empty = workflows are
	// memory-only and do not survive restarts.
	WorkflowsDir string
	// DebugAddr, when non-empty, serves net/http/pprof and expvar on a
	// second listener. Off by default: profiles expose process internals
	// and belong on localhost, never on the service port.
	DebugAddr string
	// TraceBuffer / TraceSample tune the in-memory trace ring behind
	// GET /v1/jobs/{id}/trace and GET /v1/traces/{id}.
	TraceBuffer int
	TraceSample int
	// RuntimeInterval paces the runtime/metrics poller feeding the
	// hdltsd_runtime_* gauges; 0 disables the collector.
	RuntimeInterval time.Duration
	// StreamBuffer is the per-subscriber event buffer on the SSE endpoints;
	// a subscriber that falls further behind loses oldest events first.
	StreamBuffer int
	// StreamHeartbeat paces the SSE keepalive comments that hold idle
	// streams open through proxies.
	StreamHeartbeat time.Duration
	// Ready, when set, receives the bound listen address once the daemon
	// accepts connections (test hook).
	Ready func(addr string)
	// DebugReady mirrors Ready for the debug listener.
	DebugReady func(addr string)
}

func main() {
	var o options
	version := flag.Bool("version", false, "print build information and exit")
	flag.StringVar(&o.Addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.Workers, "workers", 0, "scheduling workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.Queue, "queue", 64, "request queue depth; beyond it requests get 429")
	flag.DurationVar(&o.Timeout, "timeout", 30*time.Second, "per-request deadline (queue wait + scheduling)")
	flag.Int64Var(&o.MaxBody, "max-body", 8<<20, "maximum request body bytes")
	flag.DurationVar(&o.DrainTimeout, "drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests")
	flag.BoolVar(&o.Quiet, "q", false, "suppress access logs")
	flag.StringVar(&o.JobsDir, "jobs-dir", "", "durable job store directory; empty = jobs do not survive restarts")
	flag.IntVar(&o.JobsWorkers, "jobs-workers", 0, "asynchronous job workers (0 = GOMAXPROCS)")
	flag.DurationVar(&o.JobsTTL, "jobs-ttl", time.Hour, "how long finished jobs stay queryable before garbage collection")
	flag.StringVar(&o.WorkflowsDir, "workflows-dir", "", "durable workflow store directory; empty = workflows do not survive restarts")
	flag.StringVar(&o.DebugAddr, "debug-addr", "", "pprof/expvar listen address (e.g. localhost:6060); empty = disabled")
	flag.IntVar(&o.TraceBuffer, "trace-buffer", 512, "request traces retained in memory for the trace endpoints")
	flag.IntVar(&o.TraceSample, "trace-sample", 1, "record one in N scheduling requests into the trace ring")
	flag.DurationVar(&o.RuntimeInterval, "runtime-interval", 10*time.Second, "runtime telemetry poll interval; 0 = disabled")
	flag.IntVar(&o.StreamBuffer, "stream-buffer", obs.DefaultStreamBuffer, "per-subscriber SSE event buffer; slow subscribers drop oldest events beyond it")
	flag.DurationVar(&o.StreamHeartbeat, "stream-heartbeat", 15*time.Second, "SSE keepalive interval on the event-stream endpoints")
	flag.Parse()
	if *version {
		info := obs.ReadBuild()
		fmt.Printf("hdltsd %s %s", info.Version, info.GoVersion)
		if info.Revision != "" {
			fmt.Printf(" %s", info.Revision)
			if info.Modified {
				fmt.Print(" (modified)")
			}
		}
		fmt.Println()
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "hdltsd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains and exits. It owns the
// whole daemon lifecycle so tests can exercise it end to end.
func run(ctx context.Context, o options) error {
	var access *slog.Logger
	if !o.Quiet {
		access = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv, err := server.New(server.Config{
		Workers:         o.Workers,
		QueueDepth:      o.Queue,
		RequestTimeout:  o.Timeout,
		MaxBodyBytes:    o.MaxBody,
		AccessLog:       access,
		TraceBuffer:     o.TraceBuffer,
		TraceSample:     o.TraceSample,
		StreamBuffer:    o.StreamBuffer,
		StreamHeartbeat: o.StreamHeartbeat,
		Jobs: jobs.Config{
			Dir:     o.JobsDir,
			Workers: o.JobsWorkers,
			TTL:     o.JobsTTL,
		},
		Workflows: exec.Config{
			Dir: o.WorkflowsDir,
		},
	})
	if err != nil {
		return err
	}
	if o.RuntimeInterval > 0 {
		rc := obs.StartRuntime(nil, "hdltsd_runtime", o.RuntimeInterval)
		defer rc.Stop()
	}
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if access != nil {
		access.Info("listening", "addr", ln.Addr().String())
	}
	if o.Ready != nil {
		o.Ready(ln.Addr().String())
	}

	// The debug listener is independent of the service lifecycle: it serves
	// profiles during drain (often exactly when you want them) and is
	// closed — and its serve goroutine joined — on the way out.
	var debugSrv *http.Server
	debugErr := make(chan error, 1)
	if o.DebugAddr != "" {
		dln, err := net.Listen("tcp", o.DebugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{
			Handler:           server.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		if access != nil {
			access.Info("debug listening", "addr", dln.Addr().String())
		}
		if o.DebugReady != nil {
			o.DebugReady(dln.Addr().String())
		}
		go func() { debugErr <- debugSrv.Serve(dln) }()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain: stop advertising readiness first, then let the http.Server
	// wait for in-flight handlers (whose pool jobs run to completion),
	// then retire the worker pool.
	if access != nil {
		access.Info("draining", "timeout", o.DrainTimeout.String())
	}
	srv.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), o.DrainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
		<-debugErr // join the debug serve goroutine
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if access != nil {
		access.Info("exited cleanly")
	}
	return nil
}
