package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"hdlts/internal/workflows"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a stop function that triggers the drain path and waits for a
// clean exit.
func startDaemon(t *testing.T, o options) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	o.Addr = "127.0.0.1:0"
	o.Quiet = true
	addrCh := make(chan string, 1)
	o.Ready = func(addr string) { addrCh <- addr }
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, o) }()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	stop := func() error {
		cancel()
		select {
		case err := <-errCh:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("daemon did not exit after cancel")
		}
	}
	return "http://" + addr, stop
}

func fig1Request(t *testing.T) *bytes.Reader {
	t.Helper()
	var problem bytes.Buffer
	if err := workflows.PaperExample().WriteJSON(&problem); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"algorithm": "hdlts",
		"problem":   json.RawMessage(problem.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(body)
}

func TestDaemonEndToEnd(t *testing.T) {
	base, stop := startDaemon(t, options{
		Timeout:      10 * time.Second,
		DrainTimeout: 10 * time.Second,
	})

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}

	resp, err := http.Post(base+"/v1/schedule", "application/json", fig1Request(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("schedule = %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Algorithm string  `json:"algorithm"`
		Makespan  float64 `json:"makespan"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "HDLTS" || out.Makespan != 73 {
		t.Errorf("got %s/%g over HTTP, want HDLTS/73", out.Algorithm, out.Makespan)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `hdltsd_schedule_seconds_count{alg="HDLTS"}`) {
		t.Errorf("/metrics missing schedule latency histogram:\n%s", mbody)
	}

	if err := stop(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

func TestDaemonShutdownDrainsInFlight(t *testing.T) {
	base, stop := startDaemon(t, options{
		Timeout:      10 * time.Second,
		DrainTimeout: 10 * time.Second,
	})
	// A larger problem keeps a request plausibly in flight while we stop;
	// correctness here is that stop() never cuts it off (the server drains
	// admitted work), whatever the interleaving.
	type result struct {
		code int
		err  error
	}
	results := make(chan result, 4)
	for i := 0; i < 4; i++ {
		go func() {
			resp, err := http.Post(base+"/v1/schedule", "application/json", fig1Request(t))
			if err != nil {
				results <- result{err: err}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- result{code: resp.StatusCode}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
	for i := 0; i < 4; i++ {
		r := <-results
		// Every request either completed (200), was refused cleanly while
		// draining (503), or was issued after the listener closed.
		if r.err == nil && r.code != http.StatusOK && r.code != http.StatusServiceUnavailable {
			t.Errorf("request finished with %d, want 200 or 503", r.code)
		}
	}
}

// TestDaemonObservabilitySurface drives the debug listener, the version
// endpoint, runtime telemetry, and request correlation end to end over
// real sockets: one X-Request-ID appears in the response header, the job
// record, and the replayed trace, while profiles are served only on the
// separate -debug-addr listener.
func TestDaemonObservabilitySurface(t *testing.T) {
	debugCh := make(chan string, 1)
	base, stop := startDaemon(t, options{
		Timeout:         10 * time.Second,
		DrainTimeout:    10 * time.Second,
		DebugAddr:       "127.0.0.1:0",
		DebugReady:      func(addr string) { debugCh <- addr },
		RuntimeInterval: 50 * time.Millisecond,
	})
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	}()
	var debugBase string
	select {
	case addr := <-debugCh:
		debugBase = "http://" + addr
	case <-time.After(5 * time.Second):
		t.Fatal("debug listener never became ready")
	}

	// Correlated submission: fixed ID in, same ID everywhere out.
	const reqID = "daemon-e2e-trace-01"
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", jobRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("response X-Request-ID = %q, want %q", got, reqID)
	}
	var job struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if err != nil || job.ID == "" {
		t.Fatalf("submit: %v, job %+v", err, job)
	}
	if job.TraceID != reqID {
		t.Errorf("job trace_id = %q, want %q", job.TraceID, reqID)
	}
	// The trace endpoint replays spans and events under the same ID once
	// the job has run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tresp, err := http.Get(base + "/v1/jobs/" + job.ID + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		tbody, _ := io.ReadAll(tresp.Body)
		tresp.Body.Close()
		if tresp.StatusCode == http.StatusOK {
			var tr struct {
				TraceID string `json:"trace_id"`
				Spans   []struct {
					Name string `json:"name"`
				} `json:"spans"`
				Events []json.RawMessage `json:"events"`
			}
			if err := json.Unmarshal(tbody, &tr); err != nil {
				t.Fatal(err)
			}
			if tr.TraceID != reqID {
				t.Errorf("trace id = %q, want %q", tr.TraceID, reqID)
			}
			hasRun := false
			for _, sp := range tr.Spans {
				if sp.Name == "schedule.run" {
					hasRun = true
				}
			}
			if hasRun && len(tr.Events) > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never complete: %d %s", tresp.StatusCode, tbody)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /v1/version identifies the binary.
	vresp, err := http.Get(base + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		GoVersion  string   `json:"go_version"`
		Algorithms []string `json:"algorithms"`
	}
	err = json.NewDecoder(vresp.Body).Decode(&v)
	vresp.Body.Close()
	if err != nil || v.GoVersion == "" || len(v.Algorithms) == 0 {
		t.Errorf("/v1/version = %+v, err %v", v, err)
	}

	// Runtime telemetry flows into /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"hdltsd_runtime_goroutines", "hdltsd_build_info{"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Profiles live on the debug listener only.
	presp, err := http.Get(debugBase + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || !strings.Contains(string(pbody), "goroutine profile") {
		t.Errorf("debug goroutine profile = %d:\n%.200s", presp.StatusCode, pbody)
	}
	sresp, err := http.Get(base + "/debug/pprof/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotFound {
		t.Errorf("service port serves profiles (%d), must 404", sresp.StatusCode)
	}
}

// jobRequest is fig1Request in the single-job form of POST /v1/jobs.
func jobRequest(t *testing.T) *bytes.Reader {
	t.Helper()
	r := fig1Request(t)
	b, _ := io.ReadAll(r)
	return bytes.NewReader(b)
}

// TestDaemonJobsPersistAcrossRestart drives the -jobs-dir flags end to
// end: a job submitted to one daemon is still queryable — done, correct
// makespan, served from the store without re-solving — after a second
// daemon starts on the same directory, and resubmitting the same problem
// is a cache hit.
func TestDaemonJobsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	opts := options{
		Timeout:      10 * time.Second,
		DrainTimeout: 10 * time.Second,
		JobsDir:      dir,
		JobsTTL:      time.Hour,
	}
	base, stop := startDaemon(t, opts)

	resp, err := http.Post(base+"/v1/jobs", "application/json", jobRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if err != nil || job.ID == "" {
		t.Fatalf("submit answered %d, job %+v, err %v", resp.StatusCode, job, err)
	}
	waitDone := func() (makespan float64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(base + "/v1/jobs/" + job.ID)
			if err != nil {
				t.Fatal(err)
			}
			var v struct {
				State  string `json:"state"`
				Result struct {
					Makespan float64 `json:"makespan"`
				} `json:"result"`
			}
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if v.State == "done" {
				return v.Result.Makespan
			}
			if time.Now().After(deadline) {
				t.Fatalf("job stuck in state %s", v.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if ms := waitDone(); ms != 73 {
		t.Errorf("makespan = %g, want 73", ms)
	}
	if err := stop(); err != nil {
		t.Fatalf("first daemon exit: %v", err)
	}

	// Second daemon, same store: the finished job is served from the WAL.
	base, stop = startDaemon(t, opts)
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("second daemon exit: %v", err)
		}
	}()
	if ms := waitDone(); ms != 73 {
		t.Errorf("recovered makespan = %g, want 73", ms)
	}

	// Resubmitting the identical problem is answered from the result cache.
	resp, err = http.Post(base+"/v1/jobs", "application/json", jobRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	var again struct {
		State    string `json:"state"`
		CacheHit bool   `json:"cache_hit"`
	}
	err = json.NewDecoder(resp.Body).Decode(&again)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !again.CacheHit || again.State != "done" {
		t.Errorf("resubmit = %d %+v, want 200 done cache_hit", resp.StatusCode, again)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "hdltsd_jobs_cache_hits_total 1") {
		t.Errorf("/metrics missing cache hit counter:\n%s", mbody)
	}
}

// TestDaemonWorkflowsResumeAcrossRestart drives the execution subsystem
// through the daemon: a workflow whose middle step blocks is interrupted by
// a daemon restart, and the second daemon — same -workflows-dir — resumes
// it under the original trace ID without re-running the completed step.
func TestDaemonWorkflowsResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	marks := t.TempDir()
	opts := options{
		Timeout:      10 * time.Second,
		DrainTimeout: 10 * time.Second,
		WorkflowsDir: dir,
	}
	base, stop := startDaemon(t, opts)

	// Each step appends one line to its marker file, so line counts are
	// execution counts. "mid" blocks until the release file appears —
	// created only after the restart.
	yaml := fmt.Sprintf(`name: restartable
procs: 1
steps:
  - name: first
    command: echo run >> %[1]s/first
    cost: 0.05
  - name: mid
    command: echo run >> %[1]s/mid; while [ ! -f %[1]s/go ]; do sleep 0.05; done
    depends: [first]
    cost: 0.05
  - name: last
    command: echo run >> %[1]s/last
    depends: [mid]
    cost: 0.05
`, marks)

	resp, err := http.Post(base+"/v1/workflows", "application/yaml", strings.NewReader(yaml))
	if err != nil {
		t.Fatal(err)
	}
	var wf struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
		State   string `json:"state"`
		Replans int    `json:"replans"`
		Steps   []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"steps"`
	}
	err = json.NewDecoder(resp.Body).Decode(&wf)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || wf.ID == "" {
		t.Fatalf("submit answered %d, workflow %+v, err %v", resp.StatusCode, wf, err)
	}
	traceID := wf.TraceID

	getWF := func() {
		t.Helper()
		resp, err := http.Get(base + "/v1/workflows/" + wf.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&wf)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	stepState := func(name string) string {
		for _, s := range wf.Steps {
			if s.Name == name {
				return s.State
			}
		}
		return ""
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		getWF()
		if stepState("first") == "done" && stepState("mid") == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workflow never reached mid-run shape: %+v", wf)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Interrupt mid-workflow. The drain kills mid's shell; the record stays
	// running in the WAL.
	if err := stop(); err != nil {
		t.Fatalf("first daemon exit: %v", err)
	}

	// Let the resumed attempt finish promptly, then restart over the store.
	if err := os.WriteFile(marks+"/go", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	base, stop = startDaemon(t, opts)
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("second daemon exit: %v", err)
		}
	}()
	deadline = time.Now().Add(10 * time.Second)
	for {
		getWF()
		if wf.State == "done" {
			break
		}
		if wf.State == "failed" || wf.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("workflow did not finish after restart: %+v", wf)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if wf.TraceID != traceID {
		t.Errorf("trace ID changed across restart: %q -> %q", traceID, wf.TraceID)
	}
	if wf.Replans < 1 {
		t.Errorf("replans = %d, want >= 1 (resume re-plans the frontier)", wf.Replans)
	}
	counts := map[string]int{}
	for _, name := range []string{"first", "mid", "last"} {
		b, err := os.ReadFile(marks + "/" + name)
		if err != nil {
			t.Fatalf("marker %s: %v", name, err)
		}
		counts[name] = strings.Count(string(b), "run")
	}
	if counts["first"] != 1 {
		t.Errorf("completed step re-executed: first ran %d times", counts["first"])
	}
	if counts["mid"] != 2 {
		t.Errorf("interrupted step ran %d times, want 2", counts["mid"])
	}
	if counts["last"] != 1 {
		t.Errorf("last ran %d times, want 1", counts["last"])
	}
	// The resumed run traced under the original request ID.
	tresp, err := http.Get(base + "/v1/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s = %d after restart", traceID, tresp.StatusCode)
	}
	if !strings.Contains(string(tbody), "workflow.run") || !strings.Contains(string(tbody), "step.run") {
		t.Errorf("resumed trace missing execution spans:\n%s", tbody)
	}
}
