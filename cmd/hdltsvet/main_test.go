package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdlts/internal/analysis"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errs.String())
	}
	// Drive the expectation from the suite itself: adding an analyzer must
	// not require touching this test.
	for _, a := range analysis.Suite() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errs); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "nosuch") {
		t.Errorf("stderr does not name the unknown analyzer:\n%s", errs.String())
	}
}

// writeTree materialises a throwaway module for the CLI to analyze.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestFindingsExitOne(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module vetfixture\n\ngo 1.22\n",
		"internal/sched/clock.go": `package sched

import "time"

// Stamp leaks wall-clock time into a scheduler package.
func Stamp() time.Time { return time.Now() }
`,
	})
	var out, errs bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errs); code != 1 {
		t.Fatalf("run = %d, want 1 (stdout: %s, stderr: %s)", code, out.String(), errs.String())
	}
	if !strings.Contains(out.String(), "determinism") || !strings.Contains(out.String(), "clock.go") {
		t.Errorf("findings do not mention determinism at clock.go:\n%s", out.String())
	}
	if !strings.Contains(errs.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary:\n%s", errs.String())
	}
}

func TestJSONFindings(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module vetfixture\n\ngo 1.22\n",
		"internal/sched/clock.go": `package sched

import "time"

// Stamp leaks wall-clock time into a scheduler package.
func Stamp() time.Time { return time.Now() }
`,
	})
	var out, errs bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &out, &errs); code != 1 {
		t.Fatalf("run = %d, want 1 (stdout: %s, stderr: %s)", code, out.String(), errs.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON findings emitted")
	}
	for _, line := range lines {
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not a JSON finding: %q: %v", line, err)
		}
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding has empty fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q is absolute, want relative to -C dir", f.File)
		}
	}
	first := lines[0]
	if !strings.Contains(first, `"analyzer":"determinism"`) ||
		!strings.Contains(first, filepath.ToSlash(filepath.Join("internal", "sched", "clock.go"))) {
		t.Errorf("first finding does not name determinism at internal/sched/clock.go: %s", first)
	}
}

func TestCleanTreeExitZero(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module vetfixture\n\ngo 1.22\n",
		"internal/sched/ok.go": `package sched

// Twice is deterministic and clean.
func Twice(x int) int { return 2 * x }
`,
	})
	var out, errs bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errs); code != 0 {
		t.Fatalf("run = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errs.String())
	}
}
