// Command hdltsvet runs the project's static-analysis suite — every
// analyzer registered in internal/analysis (see hdltsvet -list) — over the
// packages matching the given patterns (default ./...).
//
// Usage:
//
//	hdltsvet [-list] [-only name,name] [-json] [packages...]
//
// With -json each finding is emitted as one JSON object per line
// ({"file","line","col","analyzer","message"}, paths relative to the
// working directory) — the format CI turns into GitHub annotations.
//
// Exit status is 0 when the tree is clean, 1 when there are findings, and
// 2 when loading or analysis itself fails. CI runs it as a blocking step;
// see docs/ANALYSIS.md for the invariants and the suppression directive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hdlts/internal/analysis"
)

// finding is the -json wire form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hdltsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON objects, one per line")
	dir := fs.String("C", ".", "change to this directory before resolving patterns")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "hdltsvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.LoadPackages(fset, *dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "hdltsvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(fset, pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "hdltsvet: %v\n", err)
		return 2
	}
	if *jsonOut {
		// Paths in the JSON form are relative to the resolved working
		// directory so CI annotations line up with repository paths.
		base := *dir
		if abs, err := filepath.Abs(base); err == nil {
			base = abs
		}
		enc := json.NewEncoder(stdout)
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			if err := enc.Encode(finding{
				File:     file,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(stderr, "hdltsvet: %v\n", err)
				return 2
			}
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hdltsvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
