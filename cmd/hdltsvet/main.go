// Command hdltsvet runs the project's static-analysis suite — the five
// analyzers in internal/analysis — over the packages matching the given
// patterns (default ./...).
//
// Usage:
//
//	hdltsvet [-list] [-only name,name] [packages...]
//
// Exit status is 0 when the tree is clean, 1 when there are findings, and
// 2 when loading or analysis itself fails. CI runs it as a blocking step;
// see docs/ANALYSIS.md for the invariants and the suppression directive.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"hdlts/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hdltsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "change to this directory before resolving patterns")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "hdltsvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.LoadPackages(fset, *dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "hdltsvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(fset, pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "hdltsvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hdltsvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
