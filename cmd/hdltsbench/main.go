// Command hdltsbench runs the canonical benchmark suite and maintains the
// repository's persisted benchmark trajectory (BENCH_<n>.json files).
//
// Typical uses:
//
//	hdltsbench                  # full suite, diff against the latest epoch
//	hdltsbench -quick           # CI profile: quick subset, short benchtime
//	hdltsbench -write           # record the run as the next BENCH_<n>.json
//	hdltsbench -run 'solver/'   # only the solver benches
//	hdltsbench -list            # print the suite without running it
//
// Exit status: 0 on success, 1 when the regression gate trips (hot-path
// allocs/op increase, or ns/op past the threshold on comparable hardware),
// 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"hdlts/internal/perf"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hdltsbench", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "run only the quick subset with a short benchtime (CI profile)")
		list      = fs.Bool("list", false, "print the selected benchmarks and exit")
		runExpr   = fs.String("run", "", "only run benchmarks matching this regexp")
		dir       = fs.String("dir", ".", "trajectory directory holding BENCH_<n>.json files")
		baseline  = fs.String("baseline", "", "baseline report to diff against (default: latest BENCH_<n>.json in -dir)")
		out       = fs.String("out", "", "write the candidate report to this path")
		write     = fs.Bool("write", false, "record the run as the next BENCH_<n>.json in -dir")
		thrNs     = fs.Float64("threshold-ns", 20, "tolerated ns/op increase on hot-path benchmarks, percent")
		thrAllocs = fs.Int64("threshold-allocs", 0, "tolerated allocs/op increase on hot-path benchmarks")
		forceNs   = fs.Bool("force-ns", false, "gate ns/op even across non-comparable environments")
		benchtime = fs.String("benchtime", "", "default benchtime for benches without an override (e.g. 2s, 10x)")
		noCompare = fs.Bool("no-compare", false, "skip the baseline diff")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var filter *regexp.Regexp
	if *runExpr != "" {
		re, err := regexp.Compile(*runExpr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdltsbench: bad -run regexp: %v\n", err)
			return 2
		}
		filter = re
	}
	opts := perf.RunOptions{Quick: *quick, Filter: filter, Benchtime: *benchtime, Log: os.Stderr}
	suite := perf.Suite()

	if *list {
		for _, bn := range perf.Selected(suite, opts) {
			tags := ""
			if bn.HotPath {
				tags += " [hot]"
			}
			if bn.Quick {
				tags += " [quick]"
			}
			fmt.Printf("%s%s\n", bn.Name, tags)
		}
		return 0
	}

	rep, err := perf.RunSuite(suite, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdltsbench: %v\n", err)
		return 2
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "hdltsbench: selection matched no benchmarks")
		return 2
	}

	if *out != "" {
		if err := perf.WriteReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "hdltsbench: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "candidate report written to %s\n", *out)
	}

	status := 0
	if !*noCompare {
		base, basePath, err := loadBaseline(*baseline, *dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdltsbench: %v\n", err)
			return 2
		}
		if base == nil {
			fmt.Fprintln(os.Stderr, "no baseline found; skipping diff")
		} else {
			deltas := perf.Compare(base, rep, perf.CompareOptions{
				NsThresholdPct: *thrNs,
				AllocThreshold: *thrAllocs,
				ForceNs:        *forceNs,
			})
			printDeltas(basePath, deltas)
			if len(perf.Breaches(deltas)) > 0 {
				status = 1
			}
		}
	}

	if *write {
		path, err := perf.NextPath(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdltsbench: %v\n", err)
			return 2
		}
		if err := perf.WriteReport(path, rep); err != nil {
			fmt.Fprintf(os.Stderr, "hdltsbench: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "trajectory epoch recorded as %s\n", path)
	}
	return status
}

// loadBaseline resolves the baseline report: an explicit path, or the
// latest trajectory epoch in dir (nil when the trajectory is empty).
func loadBaseline(path, dir string) (*perf.Report, string, error) {
	if path != "" {
		rep, err := perf.LoadReport(path)
		return rep, path, err
	}
	return perf.LatestReport(dir)
}

// printDeltas renders the diff table, one line per benchmark.
func printDeltas(basePath string, deltas []perf.Delta) {
	fmt.Printf("diff against %s:\n", basePath)
	for _, d := range deltas {
		switch d.Status {
		case "missing", "new":
			fmt.Printf("  %-10s %-32s %s\n", d.Status, d.Name, d.Reason)
			continue
		}
		line := fmt.Sprintf("  %-10s %-32s %12.0f -> %12.0f ns/op (%+.1f%%)  %d -> %d allocs/op",
			d.Status, d.Name, d.BaseNs, d.CandNs, d.NsPct, d.BaseAllocs, d.CandAllocs)
		if d.Reason != "" {
			line += "  [" + d.Reason + "]"
		}
		fmt.Println(line)
	}
}
