// Command dagen generates application-workflow problem instances — random
// (Table II parameters), FFT, Montage, or Molecular Dynamics — and writes
// them as problem JSON (consumed by cmd/hdltsched) or Graphviz DOT.
//
// Usage:
//
//	dagen -kind random -v 200 -alpha 1.0 -density 3 -ccr 2 -procs 4 > p.json
//	dagen -kind fft -m 16 -ccr 3 > fft.json
//	dagen -kind montage -n 50 -procs 5 > montage.json
//	dagen -kind gauss -n 8 > ge.json
//	dagen -kind epigenomics -n 6 > epi.json
//	dagen -kind moldyn -dot > md.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"hdlts/internal/dag"
	"hdlts/internal/gen"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

func main() {
	var (
		kind    = flag.String("kind", "random", "workflow kind: random | fft | montage | moldyn | gauss | epigenomics | cybershake | ligo | dot | example")
		v       = flag.Int("v", 100, "random: number of tasks")
		alpha   = flag.Float64("alpha", 1.0, "random: shape parameter")
		density = flag.Int("density", 3, "random: task out-degree")
		multi   = flag.Bool("multientry", false, "random: allow multiple entry tasks")
		m       = flag.Int("m", 16, "fft: input points (power of two)")
		n       = flag.Int("n", 50, "size: montage total tasks / gauss matrix size / epigenomics lanes / cybershake variations / ligo blocks")
		ccr     = flag.Float64("ccr", 1.0, "communication-to-computation ratio")
		procs   = flag.Int("procs", 4, "number of processors")
		wdag    = flag.Float64("wdag", 80, "mean DAG computation time")
		beta    = flag.Float64("beta", 1.2, "heterogeneity factor (0..2)")
		seed    = flag.Int64("seed", 1, "random seed")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT instead of problem JSON")
		format  = flag.String("format", "", "output format: json (default) | dot | workflow (runnable YAML for hdltsrun / POST /v1/workflows)")
		tscale  = flag.Float64("timescale", 0.01, "workflow format: seconds of real sleep per abstract W unit")
		from    = flag.String("from", "", "dot kind: import the workflow structure from this Graphviz DOT file")
		stats   = flag.Bool("stats", false, "print workflow statistics to stderr")
	)
	flag.Parse()
	if err := run(os.Stdout, os.Stderr, *kind, *v, *alpha, *density, *multi, *m, *n, *ccr, *procs, *wdag, *beta, *seed, *dot, *format, *tscale, *from, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "dagen:", err)
		os.Exit(1)
	}
}

func run(out, errw io.Writer, kind string, v int, alpha float64, density int, multi bool, m, n int, ccr float64, procs int, wdag, beta float64, seed int64, dot bool, format string, tscale float64, from string, stats bool) error {
	rng := rand.New(rand.NewSource(seed))
	cost := gen.CostParams{Procs: procs, WDAG: wdag, Beta: beta, CCR: ccr}

	var pr *sched.Problem
	var err error
	switch kind {
	case "random":
		pr, err = gen.Random(gen.Params{
			V: v, Alpha: alpha, Density: density, CCR: ccr,
			Procs: procs, WDAG: wdag, Beta: beta, MultiEntry: multi,
		}, rng)
	case "fft":
		var g *dag.Graph
		if g, err = workflows.FFTGraph(m); err == nil {
			pr, err = gen.AssignCosts(g, cost, rng)
		}
	case "montage":
		var g *dag.Graph
		if g, err = workflows.MontageGraph(n); err == nil {
			pr, err = gen.AssignCosts(g, cost, rng)
		}
	case "moldyn":
		pr, err = gen.AssignCosts(workflows.MolDynGraph(), cost, rng)
	case "gauss":
		var g *dag.Graph
		if g, err = workflows.GaussianGraph(n); err == nil {
			pr, err = gen.AssignCosts(g, cost, rng)
		}
	case "epigenomics":
		var g *dag.Graph
		if g, err = workflows.EpigenomicsGraph(n); err == nil {
			pr, err = gen.AssignCosts(g, cost, rng)
		}
	case "cybershake":
		var g *dag.Graph
		if g, err = workflows.CyberShakeGraph(n); err == nil {
			pr, err = gen.AssignCosts(g, cost, rng)
		}
	case "ligo":
		var g *dag.Graph
		if g, err = workflows.LIGOGraph(n); err == nil {
			pr, err = gen.AssignCosts(g, cost, rng)
		}
	case "dot":
		if from == "" {
			return fmt.Errorf("-kind dot requires -from <file.dot>")
		}
		var g *dag.Graph
		var fh *os.File
		if fh, err = os.Open(from); err == nil {
			g, err = dag.ReadDOT(fh)
			fh.Close()
		}
		if err == nil {
			pr, err = gen.AssignCosts(g, cost, rng)
		}
	case "example":
		pr = workflows.PaperExample()
	default:
		return fmt.Errorf("unknown -kind %q (want random | fft | montage | moldyn | gauss | epigenomics | cybershake | ligo | dot | example)", kind)
	}
	if err != nil {
		return err
	}
	if stats {
		st, err := dag.ComputeStats(pr.G)
		if err != nil {
			return err
		}
		fmt.Fprint(errw, st.String())
	}
	if dot && format == "" {
		format = "dot"
	}
	switch format {
	case "", "json":
		return pr.WriteJSON(out)
	case "dot":
		return pr.G.WriteDOT(out, kind)
	case "workflow":
		return writeWorkflowYAML(out, pr, kind, tscale)
	default:
		return fmt.Errorf("unknown -format %q (want json | dot | workflow)", format)
	}
}
