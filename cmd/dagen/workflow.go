package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// writeWorkflowYAML renders a generated problem as a runnable YAML
// workflow for POST /v1/workflows or cmd/hdltsrun: each task becomes a
// step whose command sleeps for its mean execution time and whose costs
// row is the task's W-matrix row, both scaled by timescale (seconds per
// abstract W unit). The result makes any dagen topology — FFT, Montage,
// random Table II instances — a live-execution benchmark whose declared
// estimates match its actual behaviour.
func writeWorkflowYAML(out io.Writer, pr *sched.Problem, name string, timescale float64) error {
	if timescale <= 0 {
		return fmt.Errorf("timescale %g must be > 0", timescale)
	}
	n := pr.NumTasks()
	procs := pr.NumProcs()
	names := stepNames(pr.G)
	var b strings.Builder
	fmt.Fprintf(&b, "name: %s\n", sanitizeName(name, 0))
	fmt.Fprintf(&b, "procs: %d\n", procs)
	b.WriteString("steps:\n")
	for i := 0; i < n; i++ {
		t := dag.TaskID(i)
		mean := 0.0
		costs := make([]string, procs)
		for p := 0; p < procs; p++ {
			c := pr.Exec(t, platform.Proc(p)) * timescale
			mean += c
			costs[p] = trimFloat(c)
		}
		mean /= float64(procs)
		fmt.Fprintf(&b, "  - name: %s\n", names[i])
		fmt.Fprintf(&b, "    command: sleep %s\n", trimFloat(mean))
		fmt.Fprintf(&b, "    costs: [%s]\n", strings.Join(costs, ", "))
		if preds := pr.G.Preds(t); len(preds) > 0 {
			deps := make([]string, len(preds))
			for k, a := range preds {
				deps[k] = names[a.Task]
			}
			fmt.Fprintf(&b, "    depends: [%s]\n", strings.Join(deps, ", "))
		}
	}
	_, err := io.WriteString(out, b.String())
	return err
}

// stepNames maps every task to a unique workflow-safe step name, derived
// from the task's label where possible and falling back to t<ID>.
func stepNames(g *dag.Graph) []string {
	names := make([]string, g.NumTasks())
	seen := make(map[string]bool, g.NumTasks())
	for i := range names {
		name := sanitizeName(g.Task(dag.TaskID(i)).Name, i)
		if seen[name] {
			name = fmt.Sprintf("%s.%d", name, i)
		}
		seen[name] = true
		names[i] = name
	}
	return names
}

// sanitizeName squeezes an arbitrary label into the workflow name charset
// ([A-Za-z0-9._-], at most 64 chars), falling back to t<id>.
func sanitizeName(s string, id int) string {
	var b strings.Builder
	for i := 0; i < len(s) && b.Len() < 58; i++ {
		switch c := s[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			b.WriteByte(c)
		case c == ' ':
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return fmt.Sprintf("t%d", id)
	}
	return b.String()
}

// trimFloat renders a duration in seconds compactly (no exponent, no
// trailing zeros) so sleep(1) accepts it.
func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
