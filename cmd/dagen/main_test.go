package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"hdlts/internal/exec"
	"hdlts/internal/sched"
)

func TestRunEmitsLoadableJSON(t *testing.T) {
	for _, kind := range []string{"random", "fft", "montage", "moldyn", "gauss", "epigenomics", "cybershake", "ligo", "example"} {
		t.Run(kind, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, io.Discard, kind, 50, 1.0, 3, false, 8, 20, 2, 4, 80, 1.2, 1, false, "", 0.01, "", false); err != nil {
				t.Fatal(err)
			}
			pr, err := sched.ReadProblemJSON(&buf)
			if err != nil {
				t.Fatalf("emitted JSON unreadable: %v", err)
			}
			if pr.NumTasks() == 0 {
				t.Fatal("empty problem emitted")
			}
		})
	}
}

func TestRunEmitsDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, io.Discard, "moldyn", 0, 1, 1, false, 4, 20, 1, 2, 50, 1, 1, true, "", 0.01, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatalf("DOT output malformed:\n%s", buf.String())
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, io.Discard, "random", 40, 1, 2, true, 4, 20, 3, 4, 80, 1.2, 7, false, "", 0.01, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, io.Discard, "random", 40, 1, 2, true, 4, 20, 3, 4, 80, 1.2, 7, false, "", 0.01, "", false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, io.Discard, "nope", 1, 1, 1, false, 4, 20, 1, 2, 50, 1, 1, false, "", 0.01, "", false); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(&buf, io.Discard, "fft", 1, 1, 1, false, 7, 20, 1, 2, 50, 1, 1, false, "", 0.01, "", false); err == nil {
		t.Error("non-power-of-two FFT size accepted")
	}
	if err := run(&buf, io.Discard, "random", 0, 1, 1, false, 4, 20, 1, 2, 50, 1, 1, false, "", 0.01, "", false); err == nil {
		t.Error("zero-task random graph accepted")
	}
	if err := run(&buf, io.Discard, "montage", 1, 1, 1, false, 4, 5, 1, 2, 50, 1, 1, false, "", 0.01, "", false); err == nil {
		t.Error("undersized montage accepted")
	}
}

func TestRunDOTImportAndStats(t *testing.T) {
	// Emit a workflow as DOT, re-import it as a costed problem, and check
	// the statistics report.
	var dotOut bytes.Buffer
	if err := run(&dotOut, io.Discard, "gauss", 0, 1, 1, false, 4, 5, 2, 4, 80, 1.2, 1, true, "", 0.01, "", false); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/flow.dot"
	if err := osWriteFile(path, dotOut.Bytes()); err != nil {
		t.Fatal(err)
	}
	var jsonOut, statsOut bytes.Buffer
	if err := run(&jsonOut, &statsOut, "dot", 0, 1, 1, false, 4, 5, 2, 4, 80, 1.2, 1, false, "", 0.01, path, true); err != nil {
		t.Fatal(err)
	}
	pr, err := sched.ReadProblemJSON(&jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumTasks() != 14 { // Gaussian m=5
		t.Fatalf("imported tasks = %d, want 14", pr.NumTasks())
	}
	if !strings.Contains(statsOut.String(), "tasks 14") {
		t.Fatalf("stats report missing: %q", statsOut.String())
	}
	// -kind dot without -from errors.
	var buf bytes.Buffer
	if err := run(&buf, io.Discard, "dot", 0, 1, 1, false, 4, 5, 1, 2, 50, 1, 1, false, "", 0.01, "", false); err == nil {
		t.Error("dot kind without -from accepted")
	}
}

// osWriteFile is a tiny indirection so the test reads naturally.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestRunEmitsRunnableWorkflowYAML(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, io.Discard, "moldyn", 0, 1, 1, false, 4, 20, 1, 3, 50, 1, 1, false, "workflow", 0.002, "", false); err != nil {
		t.Fatal(err)
	}
	wf, err := exec.DecodeWorkflow(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted workflow YAML does not decode: %v\n%s", err, buf.String())
	}
	if wf.Name != "moldyn" || wf.Procs != 3 {
		t.Errorf("header = %q/%d, want moldyn/3", wf.Name, wf.Procs)
	}
	if len(wf.Steps) == 0 {
		t.Fatal("no steps emitted")
	}
	edges := 0
	for _, st := range wf.Steps {
		if !strings.HasPrefix(st.Command, "sleep ") {
			t.Errorf("step %s command = %q, want a sleep", st.Name, st.Command)
		}
		if len(st.Costs) != wf.Procs {
			t.Errorf("step %s costs = %v, want %d entries", st.Name, st.Costs, wf.Procs)
		}
		edges += len(st.Depends)
	}
	if edges == 0 {
		t.Error("no dependencies survived the conversion")
	}
	// The emitted workflow must compile onto the scheduling model.
	pr, err := wf.Compile()
	if err != nil {
		t.Fatalf("emitted workflow does not compile: %v", err)
	}
	if pr.NumTasks() != len(wf.Steps) {
		t.Errorf("compiled tasks = %d, want %d", pr.NumTasks(), len(wf.Steps))
	}
	// The scaled costs round-trip (within the 4-decimal rendering).
	if got := pr.Exec(0, 0); got <= 0 {
		t.Errorf("W[0][0] = %g, want > 0", got)
	}
}
