package hdlts_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hdlts"
)

// TestPublicAPIEndToEnd drives the façade exactly as README documents it.
func TestPublicAPIEndToEnd(t *testing.T) {
	pr := hdlts.PaperExample()
	s, err := hdlts.NewHDLTS().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 73 {
		t.Fatalf("makespan = %g, want 73", s.Makespan())
	}
	res, err := hdlts.Evaluate("HDLTS", s)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLR < 1 || res.Efficiency <= 0 || res.Efficiency > 1.001 {
		t.Fatalf("implausible metrics: %+v", res)
	}
}

func TestPublicAPITrace(t *testing.T) {
	s, steps, err := hdlts.ScheduleWithTrace(hdlts.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 10 || s.Makespan() != 73 {
		t.Fatalf("trace: %d steps, makespan %g", len(steps), s.Makespan())
	}
}

func TestPublicAPIBuildProblem(t *testing.T) {
	g := hdlts.NewGraph(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	if err := g.AddEdge(a, b, 4); err != nil {
		t.Fatal(err)
	}
	w, err := hdlts.CostsFromRows([][]float64{{3, 5}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := hdlts.NewUniformPlatform(2)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := hdlts.NewProblem(g, pl, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range hdlts.Algorithms() {
		s, err := alg.Schedule(pr)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		// Optimal here: a on P1 at 3, b locally at 5.
		if s.Makespan() < 5 {
			t.Fatalf("%s makespan %g below optimum 5", alg.Name(), s.Makespan())
		}
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pr, err := hdlts.RandomProblem(hdlts.GenParams{
		V: 60, Alpha: 1, Density: 3, CCR: 2, Procs: 4, WDAG: 80, Beta: 1.2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumTasks() != 60 {
		t.Fatalf("tasks = %d", pr.NumTasks())
	}

	for name, build := range map[string]func() (*hdlts.Graph, error){
		"fft":     func() (*hdlts.Graph, error) { return hdlts.FFTGraph(8) },
		"montage": func() (*hdlts.Graph, error) { return hdlts.MontageGraph(20) },
		"moldyn":  func() (*hdlts.Graph, error) { return hdlts.MolDynGraph(), nil },
	} {
		g, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p2, err := hdlts.AssignCosts(g, hdlts.CostParams{Procs: 3, WDAG: 50, Beta: 1, CCR: 2}, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := hdlts.NewHDLTS().Schedule(p2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublicAPIRegistry(t *testing.T) {
	if len(hdlts.Algorithms()) != 6 || len(hdlts.PaperModeAlgorithms()) != 6 {
		t.Fatal("algorithm pools incomplete")
	}
	a, err := hdlts.GetAlgorithm("heft")
	if err != nil || a.Name() != "HEFT" {
		t.Fatalf("GetAlgorithm: %v %v", a, err)
	}
	if _, err := hdlts.GetAlgorithm("zzz"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestPublicAPIAblations(t *testing.T) {
	pr := hdlts.PaperExample()
	v := hdlts.NewHDLTSWithOptions(hdlts.HDLTSOptions{DisableDuplication: true})
	s, err := v.Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() < 73 {
		t.Fatalf("nodup beat the published makespan: %g", s.Makespan())
	}
}

func TestPublicAPIMetrics(t *testing.T) {
	pr := hdlts.PaperExample()
	slr, err := hdlts.SLR(pr, 73)
	if err != nil || slr < 1 {
		t.Fatalf("SLR = %g, %v", slr, err)
	}
	sp, err := hdlts.Speedup(pr, 73)
	if err != nil || sp <= 0 {
		t.Fatalf("Speedup = %g, %v", sp, err)
	}
	eff, err := hdlts.Efficiency(pr, 73)
	if err != nil || eff <= 0 || eff > 1 {
		t.Fatalf("Efficiency = %g, %v", eff, err)
	}
}

func TestPublicAPIGraphTools(t *testing.T) {
	// MergeGraphs + ComputeStats + DOT round trip through the façade.
	fft, err := hdlts.FFTGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	md := hdlts.MolDynGraph()
	merged, offsets, err := hdlts.MergeGraphs(fft, md)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumTasks() != fft.NumTasks()+md.NumTasks() || offsets[1] != hdlts.TaskID(fft.NumTasks()) {
		t.Fatalf("merge shape: %d tasks, offsets %v", merged.NumTasks(), offsets)
	}
	st, err := hdlts.ComputeStats(merged)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Tasks != merged.NumTasks() {
		t.Fatalf("stats: %+v", st)
	}

	var dot bytes.Buffer
	if err := merged.WriteDOT(&dot, "merged"); err != nil {
		t.Fatal(err)
	}
	back, err := hdlts.ReadDOT(&dot)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != merged.NumTasks() || back.NumEdges() != merged.NumEdges() {
		t.Fatal("DOT round trip changed shape")
	}
}

func TestPublicAPICompact(t *testing.T) {
	pr := hdlts.PaperExample()
	s, err := hdlts.NewHDLTS().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := hdlts.Compact(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan() != 73 {
		t.Fatalf("compacted makespan = %g, want 73 (already tight)", c.Makespan())
	}
}
